// Tests for tools/lint's whole-program analyzer (DESIGN.md §14): the
// layer spec parser, the include-graph rules, the lock-order rules, the
// suppression plumbing in RunAudit, and the SARIF writer (round-tripped
// through src/util/json_parser). Every fixture expectation pins exact
// (line, rule) pairs against tests/lint_fixtures/{good,bad}/.
#include "lint/audit.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/include_graph.h"
#include "lint/lock_graph.h"
#include "lint/sarif.h"
#include "util/json_parser.h"

#ifndef QSP_LINT_FIXTURE_DIR
#error "QSP_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif

namespace qsp {
namespace lint {
namespace {

std::string ReadFixture(const std::string& rel) {
  const std::string path = std::string(QSP_LINT_FIXTURE_DIR) + "/" + rel;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A fixture file re-homed at a corpus path, so the layering rules see
// it as part of the src/ tree it pretends to live in.
SourceFile FixtureAt(const std::string& rel, const std::string& as_path) {
  SourceFile file;
  file.path = as_path;
  file.content = ReadFixture(rel);
  file.kind = ClassifyPath(as_path);
  return file;
}

SourceFile InlineFile(const std::string& path, const std::string& content) {
  SourceFile file;
  file.path = path;
  file.content = content;
  file.kind = ClassifyPath(path);
  return file;
}

// The stub lower-layer header several fixtures include.
SourceFile HelperStub() {
  return InlineFile("src/util/helper.h",
                    "namespace qsp {\n"
                    "int HelperValue();\n"
                    "}\n");
}

std::vector<std::pair<int, std::string>> LinesAndRules(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<int, std::string>> out;
  for (const Finding& f : findings) out.emplace_back(f.line, f.rule);
  std::sort(out.begin(), out.end());
  return out;
}

using Expected = std::vector<std::pair<int, std::string>>;

// The miniature layer DAG the include fixtures are written against — a
// slice of docs/layers.conf with the same shape.
LayerSpec TestSpec() {
  LayerSpec spec;
  std::string error;
  const bool ok = ParseLayerSpec(
      "layer util 0\n"
      "layer geom 10\n"
      "layer merge 40\n"
      "crosscut obs\n",
      &spec, &error);
  EXPECT_TRUE(ok) << error;
  return spec;
}

// ------------------------------------------------------------ layer spec

TEST(ParseLayerSpec, ParsesLayersCrosscutsAndComments) {
  LayerSpec spec;
  std::string error;
  ASSERT_TRUE(ParseLayerSpec(
      "# comment\n\nlayer util 0\nlayer core 60  # trailing\ncrosscut obs\n",
      &spec, &error))
      << error;
  EXPECT_EQ(0, spec.rank.at("util"));
  EXPECT_EQ(60, spec.rank.at("core"));
  EXPECT_TRUE(spec.crosscut.count("obs"));
  EXPECT_TRUE(spec.declared("obs"));
  EXPECT_FALSE(spec.declared("nope"));
}

TEST(ParseLayerSpec, RejectsMalformedInput) {
  LayerSpec spec;
  std::string error;
  EXPECT_FALSE(ParseLayerSpec("layer util zero\n", &spec, &error));
  EXPECT_FALSE(ParseLayerSpec("frob util 0\n", &spec, &error));
  EXPECT_FALSE(ParseLayerSpec("layer util 0\nlayer util 1\n", &spec, &error));
}

TEST(LayerOfPath, ExtractsSrcSubsystem) {
  EXPECT_EQ("geom", LayerOf("src/geom/rect.h"));
  EXPECT_EQ("util", LayerOf("src/util/status.h"));
  EXPECT_EQ("", LayerOf("tools/qspctl.cc"));
  EXPECT_EQ("", LayerOf("bench/bench_merge.cc"));
}

// --------------------------------------------------------- include rules

TEST(AuditFixtures, LayerBackEdge) {
  const std::vector<SourceFile> corpus = {
      FixtureAt("bad/layer_back_edge.cc", "src/geom/uses_merge.cc"),
      InlineFile("src/merge/planner_stub.h",
                 "namespace qsp {\n"
                 "double PlannerStubCost();\n"
                 "}\n"),
  };
  const auto got = LinesAndRules(AuditIncludes(corpus, TestSpec()));
  const Expected want = {{5, "layer-back-edge"}};
  EXPECT_EQ(want, got);
}

TEST(AuditFixtures, LayerUndeclaredForcesADecision) {
  const std::vector<SourceFile> corpus = {
      InlineFile("src/newthing/widget.cc", "namespace qsp {\nint W();\n}\n"),
  };
  const auto got = LinesAndRules(AuditIncludes(corpus, TestSpec()));
  ASSERT_EQ(1u, got.size());
  EXPECT_EQ("layer-undeclared", got[0].second);
}

TEST(AuditFixtures, CrosscutLayerIsExemptBothDirections) {
  // geom -> obs would be a back-edge if obs had a rank; as a crosscut
  // layer it is allowed, and obs may reach up into merge too.
  const std::vector<SourceFile> corpus = {
      InlineFile("src/geom/traced.cc",
                 "#include \"obs/probe.h\"\n"
                 "namespace qsp {\nint T() { return ProbeId(); }\n}\n"),
      InlineFile("src/obs/probe.h",
                 "#include \"merge/planner_stub.h\"\n"
                 "namespace qsp {\nint ProbeId();\n"
                 "double Uses() { return PlannerStubCost(); }\n}\n"),
      InlineFile("src/merge/planner_stub.h",
                 "namespace qsp {\ndouble PlannerStubCost();\n}\n"),
  };
  EXPECT_TRUE(AuditIncludes(corpus, TestSpec()).empty());
}

TEST(AuditFixtures, IncludeCycle) {
  const std::vector<SourceFile> corpus = {
      FixtureAt("bad/cycle_a.h", "src/util/cycle_a.h"),
      FixtureAt("bad/cycle_b.h", "src/util/cycle_b.h"),
  };
  const auto findings = AuditIncludes(corpus, TestSpec());
  const auto got = LinesAndRules(findings);
  const Expected want = {{7, "include-cycle"}};
  EXPECT_EQ(want, got);
  ASSERT_EQ(1u, findings.size());
  EXPECT_EQ("src/util/cycle_a.h", findings[0].file);
}

TEST(AuditFixtures, UnusedInclude) {
  const std::vector<SourceFile> corpus = {
      FixtureAt("bad/unused_include.cc", "src/util/unused.cc"),
      HelperStub(),
  };
  const auto got = LinesAndRules(AuditIncludes(corpus, TestSpec()));
  const Expected want = {{6, "unused-include"}};
  EXPECT_EQ(want, got);
}

TEST(AuditFixtures, GoodIncludeCorpusIsClean) {
  const std::vector<SourceFile> corpus = {
      FixtureAt("good/includes_ok.cc", "src/geom/uses_util.cc"),
      HelperStub(),
  };
  const auto findings = AuditIncludes(corpus, TestSpec());
  EXPECT_TRUE(findings.empty())
      << findings.size() << " unexpected finding(s), first: "
      << (findings.empty() ? "" : findings[0].rule);
}

// ------------------------------------------------------------ lock rules

TEST(AuditFixtures, LockOrderCycle) {
  const std::vector<SourceFile> corpus = {
      FixtureAt("bad/lock_order_cycle.cc", "src/util/lock_order_cycle.cc"),
  };
  std::vector<LockEdge> edges;
  const auto got = LinesAndRules(AuditLocks(corpus, &edges));
  const Expected want = {{13, "lock-order-cycle"}, {19, "lock-order-cycle"}};
  EXPECT_EQ(want, got);
  // Both direction edges are present and correctly attributed.
  const auto has_edge = [&edges](const std::string& held,
                                 const std::string& acquired, int line) {
    return std::any_of(edges.begin(), edges.end(), [&](const LockEdge& e) {
      return e.held == held && e.acquired == acquired && e.line == line;
    });
  };
  EXPECT_TRUE(has_edge("Ledger::a_", "Ledger::b_", 13));
  EXPECT_TRUE(has_edge("Ledger::b_", "Ledger::a_", 19));
}

TEST(AuditFixtures, CallbackUnderLock) {
  const std::vector<SourceFile> corpus = {
      FixtureAt("bad/callback_under_lock.cc", "src/util/callback.cc"),
  };
  const auto got = LinesAndRules(AuditLocks(corpus, nullptr));
  const Expected want = {{20, "callback-under-lock"}};
  EXPECT_EQ(want, got);
}

TEST(AuditFixtures, GoodLockCorpusIsClean) {
  // Consistent a_-before-b_ order and copy-out-then-invoke callbacks
  // (the post-PR 8 ProcessBatch pattern) produce zero findings.
  const std::vector<SourceFile> corpus = {
      FixtureAt("good/locks_ok.cc", "src/util/locks_ok.cc"),
  };
  const auto findings = AuditLocks(corpus, nullptr);
  EXPECT_TRUE(findings.empty())
      << findings.size() << " unexpected finding(s), first: "
      << (findings.empty() ? "" : findings[0].rule);
}

// -------------------------------------------------- RunAudit + suppression

TEST(RunAudit, AppliesSameLineAllowMarkers) {
  const std::vector<SourceFile> corpus = {
      InlineFile("src/geom/suppressed.cc",
                 "#include \"merge/planner_stub.h\"  "
                 "// qsp-lint: allow(layer-back-edge) fixture rationale\n"
                 "namespace qsp {\n"
                 "double G() { return PlannerStubCost(); }\n"
                 "}\n"),
      InlineFile("src/merge/planner_stub.h",
                 "namespace qsp {\ndouble PlannerStubCost();\n}\n"),
  };
  const AuditResult result = RunAudit(corpus, TestSpec());
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(1u, result.suppressed);
}

TEST(RunAudit, MarkerForOtherRuleDoesNotSuppress) {
  const std::vector<SourceFile> corpus = {
      InlineFile("src/geom/wrong_marker.cc",
                 "#include \"merge/planner_stub.h\"  "
                 "// qsp-lint: allow(unused-include) wrong rule\n"
                 "namespace qsp {\n"
                 "double G() { return PlannerStubCost(); }\n"
                 "}\n"),
      InlineFile("src/merge/planner_stub.h",
                 "namespace qsp {\ndouble PlannerStubCost();\n}\n"),
  };
  const AuditResult result = RunAudit(corpus, TestSpec());
  const Expected want = {{1, "layer-back-edge"}};
  EXPECT_EQ(want, LinesAndRules(result.findings));
  EXPECT_EQ(0u, result.suppressed);
}

TEST(RunAudit, MergesIncludeAndLockFindingsSorted) {
  const std::vector<SourceFile> corpus = {
      FixtureAt("bad/lock_order_cycle.cc", "src/util/lock_order_cycle.cc"),
      FixtureAt("bad/unused_include.cc", "src/util/unused.cc"),
      HelperStub(),
  };
  const AuditResult result = RunAudit(corpus, TestSpec());
  ASSERT_EQ(3u, result.findings.size());
  // Sorted by (file, line): both lock findings precede the include one.
  EXPECT_EQ("src/util/lock_order_cycle.cc", result.findings[0].file);
  EXPECT_EQ(13, result.findings[0].line);
  EXPECT_EQ("src/util/lock_order_cycle.cc", result.findings[1].file);
  EXPECT_EQ(19, result.findings[1].line);
  EXPECT_EQ("src/util/unused.cc", result.findings[2].file);
  EXPECT_EQ("unused-include", result.findings[2].rule);
}

// ----------------------------------------------------------------- SARIF

TEST(Sarif, RoundTripsThroughJsonParser) {
  Finding a;
  a.file = "src/geom/uses_merge.cc";
  a.line = 5;
  a.rule = "layer-back-edge";
  a.message = "geom (rank 10) includes merge (rank 40)";
  Finding b;
  b.file = "src/util/lock_order_cycle.cc";
  b.line = 13;
  b.rule = "lock-order-cycle";
  b.message = "cycle: Ledger::a_ -> Ledger::b_ -> Ledger::a_";

  const std::string sarif = FindingsToSarif({a, b}, "1.0");
  const Result<JsonValue> parsed = ParseJson(sarif);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& root = parsed.value();

  ASSERT_NE(nullptr, root.Find("$schema"));
  EXPECT_EQ("2.1.0", root.Find("version")->AsString());

  const auto& runs = root.Find("runs")->AsArray();
  ASSERT_EQ(1u, runs.size());
  const JsonValue& driver = *runs[0].Find("tool")->Find("driver");
  EXPECT_EQ("qsp_audit", driver.Find("name")->AsString());
  EXPECT_EQ("1.0", driver.Find("version")->AsString());

  // The rule catalogue covers every id the analyzer can emit.
  const auto& rules = driver.Find("rules")->AsArray();
  bool saw_lock_rule = false;
  for (const JsonValue& rule : rules) {
    if (rule.Find("id")->AsString() == "lock-order-cycle")
      saw_lock_rule = true;
  }
  EXPECT_TRUE(saw_lock_rule);
  EXPECT_GE(rules.size(), 12u);

  const auto& results = runs[0].Find("results")->AsArray();
  ASSERT_EQ(2u, results.size());
  EXPECT_EQ("layer-back-edge", results[0].Find("ruleId")->AsString());
  EXPECT_EQ("error", results[0].Find("level")->AsString());
  EXPECT_EQ(a.message, results[0].Find("message")->Find("text")->AsString());
  const JsonValue& loc =
      *results[0].Find("locations")->AsArray()[0].Find("physicalLocation");
  EXPECT_EQ("src/geom/uses_merge.cc",
            loc.Find("artifactLocation")->Find("uri")->AsString());
  EXPECT_EQ(5, static_cast<int>(
                   loc.Find("region")->Find("startLine")->AsNumber()));
}

TEST(Sarif, EmptyFindingsStillProducesAValidRun) {
  const std::string sarif = FindingsToSarif({}, "1.0");
  const Result<JsonValue> parsed = ParseJson(sarif);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const auto& runs = parsed.value().Find("runs")->AsArray();
  ASSERT_EQ(1u, runs.size());
  EXPECT_TRUE(runs[0].Find("results")->AsArray().empty());
}

}  // namespace
}  // namespace lint
}  // namespace qsp
