#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "relation/generator.h"
#include "relation/grid_index.h"
#include "relation/rtree.h"
#include "util/rng.h"

namespace qsp {
namespace {

Table ClusteredTable(uint64_t seed, size_t n) {
  Rng rng(seed);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = n;
  config.clustered_fraction = 0.6;
  config.num_clusters = 3;
  config.payload_fields = 0;
  return GenerateTable(config, &rng);
}

TEST(RTreeTest, EmptyTable) {
  Table table(Schema::Geographic(0));
  RTree tree(table);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.Query(Rect(0, 0, 100, 100)).empty());
  EXPECT_EQ(tree.Count(Rect(0, 0, 100, 100)), 0u);
}

TEST(RTreeTest, SingleRow) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({5.0, 5.0}).ok());
  RTree tree(table);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.Query(Rect(0, 0, 10, 10)), (std::vector<RowId>{0}));
  EXPECT_TRUE(tree.Query(Rect(6, 6, 10, 10)).empty());
}

TEST(RTreeTest, EmptyQueryRect) {
  Table table = ClusteredTable(1, 100);
  RTree tree(table);
  EXPECT_TRUE(tree.Query(Rect::Empty()).empty());
  EXPECT_EQ(tree.Count(Rect::Empty()), 0u);
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  // fanout 4: 100 rows -> 25 leaves -> 7 -> 2 -> 1; height 4.
  Table table = ClusteredTable(2, 100);
  RTree tree(table, 4);
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 5);
  EXPECT_GT(tree.num_nodes(), 25u);
}

TEST(RTreeTest, FullDomainReturnsEverything) {
  Table table = ClusteredTable(3, 500);
  RTree tree(table);
  EXPECT_EQ(tree.Query(Rect(0, 0, 100, 100)).size(), 500u);
  EXPECT_EQ(tree.Count(Rect(0, 0, 100, 100)), 500u);
}

TEST(RTreeTest, CoveredSubtreeCountFastPathIsExact) {
  Table table = ClusteredTable(4, 2000);
  RTree tree(table, 8);
  // A rect covering most of the domain exercises the whole-subtree
  // counting path; compare against the scan.
  const Rect big(5, 5, 95, 95);
  EXPECT_EQ(tree.Count(big), table.CountRange(big));
}

/// Property: Query/Count agree with the full scan and the grid index on
/// random workloads, data distributions and fanouts.
class RTreeEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(RTreeEquivalence, MatchesScanAndGrid) {
  const uint64_t seed = std::get<0>(GetParam());
  const int fanout = std::get<1>(GetParam());
  Table table = ClusteredTable(seed, 800);
  RTree tree(table, fanout);
  GridIndex grid(table, Rect(0, 0, 100, 100));

  Rng rng(seed ^ 0xFEED);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.UniformDouble(-10, 95);
    const double y = rng.UniformDouble(-10, 95);
    const Rect q(x, y, x + rng.UniformDouble(0, 40),
                 y + rng.UniformDouble(0, 40));
    const auto scan = table.ScanRange(q);
    ASSERT_EQ(tree.Query(q), scan) << q.ToString() << " fanout " << fanout;
    ASSERT_EQ(tree.Count(q), scan.size());
    ASSERT_EQ(grid.Query(q), scan);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFanouts, RTreeEquivalence,
    ::testing::Combine(::testing::Values(11, 22, 33),
                       ::testing::Values(2, 4, 16, 64)));

TEST(RTreeTest, DuplicatePositionsAllFound) {
  Table table(Schema::Geographic(0));
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(table.Insert({5.0, 5.0}).ok());
  RTree tree(table, 4);
  EXPECT_EQ(tree.Query(Rect(5, 5, 5, 5)).size(), 20u);
}

}  // namespace
}  // namespace qsp
