#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "channel/channel_cost.h"
#include "channel/hill_climb_allocator.h"
#include "core/subscription_service.h"
#include "cost/cost_model.h"
#include "merge/pair_merger.h"
#include "net/simulator.h"
#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "query/merge_context.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/exact_estimator.h"
#include "util/rng.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// Cross-module consistency: with the exact estimator and bounding-rect
/// merging, the planner's estimated size(M) and U(Q,M) must equal the
/// tuple counts the simulator actually measures on the wire.
class PlannerVsWire : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerVsWire, EstimatedCostTermsMatchMeasuredTraffic) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  const Rect domain(0, 0, 100, 100);
  TableGeneratorConfig tconfig;
  tconfig.domain = domain;
  tconfig.num_objects = 1500;
  tconfig.clustered_fraction = 0.4;
  tconfig.payload_fields = 0;
  Table table = GenerateTable(tconfig, &rng);
  GridIndex index(table, domain);

  QueryGenConfig qconfig;
  qconfig.domain = domain;
  qconfig.num_queries = 12;
  qconfig.cf = 0.7;
  QuerySet queries(GenerateQueries(qconfig, &rng));
  ClientSet clients =
      AssignClients(queries, 4, ClientAssignment::kLocality, &rng);

  ExactEstimator estimator(&index);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{3.0, 1.0, 1.0, 0.0};

  PairMerger merger;
  auto outcome = merger.Merge(ctx, model);
  ASSERT_TRUE(outcome.ok());

  DisseminationPlan plan;
  plan.allocation.push_back(clients.AllClients());
  plan.channel_partitions.push_back(outcome->partition);

  MulticastSimulator sim(&table, &index, &queries, &clients);
  const RoundStats stats = sim.RunRound(plan, procedure);
  ASSERT_TRUE(stats.all_answers_correct);

  // |M|: one message per merged group under bounding-rect.
  EXPECT_EQ(stats.num_messages, outcome->partition.size());

  // size(M): sum of estimated merged sizes == payload rows on the wire.
  double estimated_size = 0.0;
  double estimated_u = 0.0;
  for (const QueryGroup& group : outcome->partition) {
    const GroupStats& gs = ctx.Stats(group);
    estimated_size += gs.size;
    estimated_u += gs.irrelevant;
  }
  EXPECT_EQ(static_cast<size_t>(estimated_size + 0.5), stats.payload_rows);

  // U(Q,M): the planner charges (R - S_q) per member query q. On the
  // wire, the same row can be irrelevant to a client once per message,
  // and a client subscribed to several queries in one group examines the
  // payload once per extractor. Recompute the planner's U the way the
  // simulator counts it (per client-message, rows outside the union of
  // that client's member queries) and compare exactly.
  size_t expected_irrelevant = 0;
  for (const QueryGroup& group : outcome->partition) {
    Rect bbox = Rect::Empty();
    for (QueryId q : group) bbox = bbox.BoundingUnion(queries.rect(q));
    const auto payload = index.Query(bbox);
    for (ClientId c = 0; c < clients.num_clients(); ++c) {
      // Rows in the message payload that serve none of c's queries in
      // this group.
      bool is_recipient = false;
      for (QueryId q : group) {
        const auto& subs = clients.QueriesOf(c);
        if (std::binary_search(subs.begin(), subs.end(), q)) {
          is_recipient = true;
        }
      }
      if (!is_recipient) continue;
      for (RowId row : payload) {
        bool used = false;
        for (QueryId q : group) {
          const auto& subs = clients.QueriesOf(c);
          if (!std::binary_search(subs.begin(), subs.end(), q)) continue;
          if (queries.rect(q).Contains(table.PositionOf(row))) {
            used = true;
            break;
          }
        }
        if (!used) ++expected_irrelevant;
      }
    }
  }
  EXPECT_EQ(stats.irrelevant_rows, expected_irrelevant);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerVsWire,
                         ::testing::Values(1, 2, 3, 4, 5));

/// The telemetry pipeline end to end: with ServiceConfig::telemetry on,
/// the planner publishes its estimated cost-model terms as plan.est.*
/// gauges and the simulator folds its measurements into net.round.*. With
/// the exact estimator, bounding-rect merging, and one subscription per
/// client, estimates and measurements must agree exactly.
TEST(TelemetryIntegration, PlannerEstimateGaugesMatchSimulatorMetrics) {
  obs::MetricRegistry::Default().Reset();
  obs::PhaseTracer::Default().Clear();

  const Rect domain(0, 0, 100, 100);
  Rng rng(99);
  TableGeneratorConfig tconfig;
  tconfig.domain = domain;
  tconfig.num_objects = 1500;
  tconfig.clustered_fraction = 0.4;
  Table table = GenerateTable(tconfig, &rng);

  ServiceConfig config;
  config.cost_model = {3.0, 1.0, 1.0, 0.0};
  config.merger = MergerKind::kPairMerging;
  config.procedure = ProcedureKind::kBoundingRect;
  config.estimator = EstimatorKind::kExact;
  config.telemetry = true;
  SubscriptionService service(std::move(table), domain, config);

  QueryGenConfig qconfig;
  qconfig.domain = domain;
  qconfig.num_queries = 12;
  qconfig.cf = 0.7;
  Rng qrng(100);
  for (const Rect& rect : GenerateQueries(qconfig, &qrng)) {
    service.Subscribe(service.AddClient(), rect);  // One query per client.
  }

  ASSERT_TRUE(service.Plan().ok());
  auto stats = service.RunRound();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->all_answers_correct);

  const auto& registry = obs::MetricRegistry::Default();
  EXPECT_EQ(registry.GaugeValue("plan.est.messages"),
            registry.GaugeValue("net.round.last_messages"));
  EXPECT_EQ(registry.GaugeValue("plan.est.size"),
            registry.GaugeValue("net.round.last_payload_rows"));
  EXPECT_EQ(registry.GaugeValue("plan.est.irrelevant"),
            registry.GaugeValue("net.round.last_irrelevant_rows"));
  // The registry view is the same data RoundStats carries.
  EXPECT_EQ(registry.CounterValue("net.round.payload_rows"),
            stats->payload_rows);
  EXPECT_EQ(registry.CounterValue("net.round.irrelevant_rows"),
            stats->irrelevant_rows);
  // The planner and the merge algorithm both left their footprints.
  EXPECT_EQ(registry.CounterValue("core.plan.runs"), 1u);
  EXPECT_EQ(registry.CounterValue("merge.pair-merging.runs"), 1u);
  EXPECT_GT(registry.CounterValue("stats.exact.calls"), 0u);
  // And the tracer saw both top-level phases.
  const auto& spans = obs::PhaseTracer::Default().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "plan");
  EXPECT_EQ(spans[1].name, "simulate");

  obs::SetEnabled(false);  // Leave global state clean for other tests.
  obs::MetricRegistry::Default().Reset();
  obs::PhaseTracer::Default().Clear();
}

/// Merging must never break correctness while reducing message count, on
/// a spread of workload shapes.
class WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(WorkloadSweep, MergingReducesMessagesKeepsCorrectness) {
  const double cf = std::get<0>(GetParam());
  const double df = std::get<1>(GetParam());
  const int num_channels = std::get<2>(GetParam());

  Rng rng(4242);
  TableGeneratorConfig tconfig;
  tconfig.domain = Rect(0, 0, 100, 100);
  tconfig.num_objects = 1000;
  tconfig.payload_fields = 0;
  Table table = GenerateTable(tconfig, &rng);

  ServiceConfig config;
  config.cost_model = {3.0, 1.0, 0.5, 0.0};
  config.estimator = EstimatorKind::kExact;
  config.num_channels = num_channels;
  SubscriptionService service(std::move(table), tconfig.domain, config);

  QueryGenConfig qconfig;
  qconfig.domain = tconfig.domain;
  qconfig.num_queries = 18;
  qconfig.cf = cf;
  qconfig.df = df;
  const auto rects = GenerateQueries(qconfig, &rng);
  for (size_t i = 0; i < 6; ++i) service.AddClient();
  for (size_t i = 0; i < rects.size(); ++i) {
    service.Subscribe(static_cast<ClientId>(i % 6), rects[i]);
  }

  auto report = service.Plan();
  ASSERT_TRUE(report.ok());
  auto stats = service.RunRound();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->all_answers_correct);
  EXPECT_LE(report->estimated_cost, report->initial_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WorkloadSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(0.01, 0.1),
                       ::testing::Values(1, 2)));

/// The headline end-to-end claim of the paper: on clustered workloads,
/// merging lowers actual transmitted data + message count relative to the
/// unmerged baseline.
TEST(HeadlineResult, MergingBeatsUnmergedOnClusteredWorkload) {
  Rng rng(777);
  const Rect domain(0, 0, 100, 100);
  TableGeneratorConfig tconfig;
  tconfig.domain = domain;
  tconfig.num_objects = 2000;
  tconfig.payload_fields = 0;
  Table table = GenerateTable(tconfig, &rng);
  GridIndex index(table, domain);

  QueryGenConfig qconfig;
  qconfig.domain = domain;
  qconfig.num_queries = 30;
  qconfig.cf = 0.9;
  qconfig.sf = 0.2;
  qconfig.df = 0.02;
  QuerySet queries(GenerateQueries(qconfig, &rng));
  ClientSet clients =
      AssignClients(queries, 6, ClientAssignment::kLocality, &rng);

  ExactEstimator estimator(&index);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{5.0, 1.0, 0.2, 0.0};

  PairMerger merger;
  auto outcome = merger.Merge(ctx, model);
  ASSERT_TRUE(outcome.ok());
  ASSERT_LT(outcome->partition.size(), queries.size());  // Merged something.

  DisseminationPlan merged_plan;
  merged_plan.allocation.push_back(clients.AllClients());
  merged_plan.channel_partitions.push_back(outcome->partition);

  DisseminationPlan unmerged_plan;
  unmerged_plan.allocation.push_back(clients.AllClients());
  unmerged_plan.channel_partitions.push_back(
      SingletonPartition(queries.size()));

  MulticastSimulator sim(&table, &index, &queries, &clients);
  const RoundStats merged = sim.RunRound(merged_plan, procedure);
  const RoundStats unmerged = sim.RunRound(unmerged_plan, procedure);

  EXPECT_TRUE(merged.all_answers_correct);
  EXPECT_TRUE(unmerged.all_answers_correct);
  EXPECT_LT(merged.num_messages, unmerged.num_messages);
  EXPECT_LT(merged.payload_rows, unmerged.payload_rows);
  EXPECT_LT(merged.headers_checked, unmerged.headers_checked);
}

}  // namespace
}  // namespace qsp
