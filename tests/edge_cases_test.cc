// Edge cases cutting across modules: empty inputs, singletons, and
// degenerate geometry that the main suites don't reach.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "channel/channel_cost.h"
#include "channel/hill_climb_allocator.h"
#include "cost/cost_model.h"
#include "geom/hull.h"
#include "geom/region.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/incremental_merger.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/predicate.h"
#include "relation/grid_index.h"
#include "relation/rtree.h"
#include "stats/size_estimator.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

struct EmptyInstance {
  QuerySet queries;
  UniformDensityEstimator estimator{1.0};
  BoundingRectProcedure procedure;
  MergeContext ctx{&queries, &estimator, &procedure};
  CostModel model{1, 1, 1, 0};
};

// ----------------------------------------------- Mergers on empty input

TEST(EdgeCases, AllMergersHandleZeroQueries) {
  EmptyInstance inst;
  PairMerger pair;
  PartitionMerger exact;
  DirectedSearchMerger directed(4, 1);
  ClusteringMerger clustering;
  for (const Merger* merger : std::initializer_list<const Merger*>{
           &pair, &exact, &directed, &clustering}) {
    auto outcome = merger->Merge(inst.ctx, inst.model);
    ASSERT_TRUE(outcome.ok()) << merger->name();
    EXPECT_TRUE(outcome->partition.empty()) << merger->name();
    EXPECT_EQ(outcome->cost, 0.0) << merger->name();
  }
}

TEST(EdgeCases, AllMergersHandleOneQuery) {
  QuerySet queries({Rect(0, 0, 5, 5)});
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{1, 1, 1, 0};
  PairMerger pair;
  PartitionMerger exact;
  DirectedSearchMerger directed(4, 1);
  ClusteringMerger clustering;
  for (const Merger* merger : std::initializer_list<const Merger*>{
           &pair, &exact, &directed, &clustering}) {
    auto outcome = merger->Merge(ctx, model);
    ASSERT_TRUE(outcome.ok()) << merger->name();
    EXPECT_EQ(outcome->partition, Partition({{0}})) << merger->name();
  }
}

TEST(EdgeCases, IncrementalRepairOnEmptyStateIsNoOp) {
  EmptyInstance inst;
  IncrementalMerger incremental(&inst.ctx, inst.model);
  EXPECT_EQ(incremental.Repair(), 0.0);
  EXPECT_TRUE(incremental.partition().empty());
}

// ------------------------------------------------- Degenerate geometry

TEST(EdgeCases, ZeroAreaQueriesStillMergeable) {
  // Point queries (degenerate rects) have size 0 but remain valid.
  QuerySet queries({Rect(5, 5, 5, 5), Rect(5, 5, 5, 5)});
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{1, 1, 1, 0};
  PairMerger merger;
  auto outcome = merger.Merge(ctx, model);
  ASSERT_TRUE(outcome.ok());
  // Identical zero-size queries merge (saves K_M, costs nothing).
  EXPECT_EQ(outcome->partition.size(), 1u);
}

TEST(EdgeCases, LineQueriesInExactCover) {
  // Width-zero rectangles produce zero-area pieces; the procedure must
  // still allocate every member somewhere.
  QuerySet queries({Rect(5, 0, 5, 10), Rect(0, 5, 10, 5)});
  ExactCoverProcedure procedure;
  const auto merged = procedure.Merge(queries, {0, 1});
  std::set<QueryId> served;
  for (const auto& m : merged) {
    served.insert(m.members.begin(), m.members.end());
  }
  EXPECT_EQ(served, (std::set<QueryId>{0, 1}));
}

TEST(EdgeCases, HullOfEmptyAndDegenerateInput) {
  EXPECT_TRUE(BoundingPolygon({}).IsEmpty());
  EXPECT_TRUE(BoundingPolygon({Rect::Empty()}).IsEmpty());
  auto line = BoundingPolygon({Rect(0, 0, 10, 0)});
  EXPECT_DOUBLE_EQ(line.Area(), 0.0);
}

TEST(EdgeCases, RegionOfZeroWidthRects) {
  auto region = RectilinearRegion::UnionOf({Rect(1, 0, 1, 5)});
  EXPECT_DOUBLE_EQ(region.Area(), 0.0);
  // Covers() treats zero-area rects as covered (nothing to miss).
  EXPECT_TRUE(region.Covers(Rect(1, 0, 1, 5)));
}

// --------------------------------------------------- Channel edge cases

TEST(EdgeCases, SingleClientAllocationIsTrivial) {
  QuerySet queries({Rect(0, 0, 5, 5)});
  ClientSet clients;
  clients.AddClient();
  clients.Subscribe(0, 0);
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{1, 1, 1, 0};
  ChannelCostEvaluator evaluator(&ctx, model, &clients);
  HillClimbAllocator allocator(StartPolicy::kBestOfBoth, 1);
  auto outcome = allocator.Allocate(evaluator, 3);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->allocation.size(), 1u);
  EXPECT_EQ(outcome->allocation[0], (std::vector<ClientId>{0}));
}

TEST(EdgeCases, ClientWithNoSubscriptionsCostsNothingExtra) {
  QuerySet queries({Rect(0, 0, 5, 5)});
  ClientSet clients;
  clients.AddClient();
  clients.AddClient();  // Client 1 never subscribes.
  clients.Subscribe(0, 0);
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{1, 1, 1, 0};
  ChannelCostEvaluator evaluator(&ctx, model, &clients);
  EXPECT_DOUBLE_EQ(evaluator.Cost({1}), 0.0);  // No queries, no cost.
  EXPECT_DOUBLE_EQ(evaluator.Cost({0, 1}), evaluator.Cost({0}));
}

// ------------------------------------------------------- Index edges

TEST(EdgeCases, GridIndexSingleCell) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({3.0, 3.0}).ok());
  GridIndex index(table, Rect(0, 0, 10, 10), 1, 1);
  EXPECT_EQ(index.Query(Rect(0, 0, 10, 10)).size(), 1u);
  EXPECT_EQ(index.Query(Rect(4, 4, 10, 10)).size(), 0u);
}

TEST(EdgeCases, RTreeMinimumFanout) {
  Table table(Schema::Geographic(0));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(table.Insert({static_cast<double>(i), 0.0}).ok());
  }
  RTree tree(table, 2);
  EXPECT_EQ(tree.Query(Rect(-1, -1, 10, 1)).size(), 9u);
  EXPECT_EQ(tree.Count(Rect(2, 0, 6, 0)), 5u);
}

// ----------------------------------------------------- Predicate depth

TEST(EdgeCases, ModeratelyDeepPredicateNesting) {
  std::string text = "x <= 1";
  for (int i = 0; i < 50; ++i) text = "NOT (" + text + ")";
  auto parsed = ParsePredicate(text);
  ASSERT_TRUE(parsed.ok());
  Schema schema({{"x", ValueType::kDouble}, {"y", ValueType::kDouble}});
  auto bound = BoundPredicate::Bind(parsed.value(), schema);
  ASSERT_TRUE(bound.ok());
  // 50 negations = even count => equivalent to x <= 1.
  EXPECT_TRUE(bound->Matches({0.5, 0.0}));
  EXPECT_FALSE(bound->Matches({1.5, 0.0}));
}

// --------------------------------------------------------- Misc output

TEST(EdgeCases, TablePrinterWithNoRows) {
  TablePrinter printer({"a", "b"});
  EXPECT_NE(printer.ToText().find("a"), std::string::npos);
  EXPECT_EQ(printer.ToCsv(), "a,b\n");
}

TEST(EdgeCases, CostModelZeroConstantsAreHarmless) {
  QuerySet queries({Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)});
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{0, 0, 0, 0};
  PairMerger merger;
  auto outcome = merger.Merge(ctx, model);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, 0.0);
}

}  // namespace
}  // namespace qsp
