#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/bell.h"
#include "util/float_compare.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rect");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rect");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rect");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, FunctionReturnIdiom) {
  EXPECT_TRUE(Half(4).ok());
  EXPECT_EQ(Half(4).value(), 2);
  EXPECT_FALSE(Half(3).ok());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble(-5.0, 11.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 11.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(99);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.UniformDouble());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const int64_t v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(17);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

// --------------------------------------------------------------- Summary

TEST(SummaryTest, EmptySummary) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, KnownValues) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, ToStringMentionsAllFields) {
  Summary s;
  s.Add(1.0);
  s.Add(2.0);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("n=2"), std::string::npos);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, EmptyIsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignedText) {
  TablePrinter t({"n", "value"});
  t.AddRow({"1", "alpha"});
  t.AddRow({"22", "b"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("n  | value"), std::string::npos);
  EXPECT_NE(text.find("22 | b"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter t({"a", "b"});
  t.AddNumericRow({1.5, 0.25});
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "a,b\n1.5,0.25\n");
}

TEST(TablePrinterTest, CsvEscaping) {
  TablePrinter t({"x"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_FATAL_FAILURE(t.ToText());
}

// ------------------------------------------------------------------ Bell

TEST(BellTest, KnownBellNumbers) {
  // OEIS A000110.
  const uint64_t expected[] = {1,    1,    2,     5,     15,     52,
                               203,  877,  4140,  21147, 115975, 678570,
                               4213597};
  for (int n = 0; n <= 12; ++n) {
    EXPECT_EQ(BellNumber(n), expected[n]) << "n=" << n;
  }
}

TEST(BellTest, PaperQuotedValues) {
  // Section 9.3 quotes B(12) = 4,213,597 and B(15) = 1,382,958,545.
  EXPECT_EQ(BellNumber(12), 4213597u);
  EXPECT_EQ(BellNumber(15), 1382958545u);
}

TEST(BellTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(BellNumber(64), std::numeric_limits<uint64_t>::max());
}

TEST(BellTest, PartitionsIntoAtMostMatchesStirlingSums) {
  // S(4,1)=1, S(4,2)=7, S(4,3)=6, S(4,4)=1.
  EXPECT_EQ(PartitionsIntoAtMost(4, 1), 1u);
  EXPECT_EQ(PartitionsIntoAtMost(4, 2), 8u);
  EXPECT_EQ(PartitionsIntoAtMost(4, 3), 14u);
  EXPECT_EQ(PartitionsIntoAtMost(4, 4), 15u);
  // k >= n degenerates to the Bell number.
  EXPECT_EQ(PartitionsIntoAtMost(4, 10), BellNumber(4));
}

TEST(BellTest, PartitionsEdgeCases) {
  EXPECT_EQ(PartitionsIntoAtMost(0, 3), 1u);
  EXPECT_EQ(PartitionsIntoAtMost(5, 0), 0u);
}

class BellConsistency : public ::testing::TestWithParam<int> {};

TEST_P(BellConsistency, AtMostNEqualsBell) {
  const int n = GetParam();
  EXPECT_EQ(PartitionsIntoAtMost(n, n), BellNumber(n));
}

INSTANTIATE_TEST_SUITE_P(AllSmallN, BellConsistency,
                         ::testing::Range(1, 15));

// --------------------------------------------------------- FloatCompare

TEST(FloatCompareTest, StrictImprovementWithTolerance) {
  // Exactly at the threshold is NOT an improvement (strict >), just above
  // it is. This strictness is what makes oscillation impossible.
  const double scale = 1000.0;
  const double threshold = ImprovementThreshold(scale);
  EXPECT_GT(threshold, 0.0);
  EXPECT_FALSE(IsImprovement(threshold, scale));
  EXPECT_TRUE(IsImprovement(threshold * 1.01, scale));
  // Noise-level deltas on a large scale are rejected.
  EXPECT_FALSE(IsImprovement(1e-10 * scale, scale));
  // A genuine improvement on the same scale is accepted.
  EXPECT_TRUE(IsImprovement(0.5, scale));
}

TEST(FloatCompareTest, ThresholdMeaningfulNearZeroScale) {
  // The +1 floor keeps the threshold positive even at scale 0, so pure
  // round-off deltas near a zero-cost state are still rejected.
  EXPECT_GT(ImprovementThreshold(0.0), 0.0);
  EXPECT_FALSE(IsImprovement(1e-15, 0.0));
  EXPECT_TRUE(IsImprovement(1e-3, 0.0));
  // Threshold is symmetric in the sign of the scale.
  EXPECT_EQ(ImprovementThreshold(-7.0), ImprovementThreshold(7.0));
}

TEST(FloatCompareTest, NonFiniteInputsNeverAccept) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // A NaN delta (e.g. inf - inf costs) must stall the search, not loop.
  EXPECT_FALSE(IsImprovement(nan, 10.0));
  // NaN/inf scales make the threshold unsatisfiable for finite deltas.
  EXPECT_FALSE(IsImprovement(1.0, nan));
  EXPECT_FALSE(IsImprovement(1.0, inf));
  EXPECT_FALSE(IsImprovement(-inf, 10.0));
}

TEST(FloatCompareTest, MoveAndReverseNeverBothAccepted) {
  // The no-oscillation theorem: for any delta and any pair of scales the
  // two directions of the same move are evaluated at, at most one
  // direction is an improvement.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double delta = rng.UniformDouble(-1.0, 1.0) *
                         std::pow(10.0, rng.UniformDouble(-15, 3));
    const double s1 = rng.UniformDouble(0, 1e6);
    const double s2 = rng.UniformDouble(0, 1e6);
    EXPECT_FALSE(IsImprovement(delta, s1) && IsImprovement(-delta, s2))
        << "delta=" << delta << " s1=" << s1 << " s2=" << s2;
  }
}

TEST(FloatCompareTest, NoisyDescentTerminates) {
  // Two states whose costs differ only by round-off noise: a descent loop
  // gated on IsImprovement must reject the move in both directions rather
  // than hopping between them forever.
  const double cost_a = 1234.5678901234567;
  const double cost_b = cost_a * (1.0 + 1e-15);  // below the 1e-9 tolerance
  int state = 0;
  int moves = 0;
  for (int step = 0; step < 100; ++step) {
    const double here = state == 0 ? cost_a : cost_b;
    const double there = state == 0 ? cost_b : cost_a;
    const double delta = here - there;  // "gain" from moving
    if (!IsImprovement(delta, here + there)) break;
    state = 1 - state;
    ++moves;
  }
  EXPECT_EQ(moves, 0);
}

}  // namespace
}  // namespace qsp
