// util/json_parser: the read-back half of the observability JSON story.
// Everything JsonWriter (and the exporters built on it) emits must parse
// back losslessly — including hostile metric/span names, which pins the
// escaping in util/json_writer.cc.
#include "util/json_parser.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "util/json_writer.h"

namespace qsp {
namespace {

JsonValue Parse(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  return parsed.ok() ? parsed.value() : JsonValue();
}

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(Parse("null").is_null());
  EXPECT_TRUE(Parse("true").AsBool());
  EXPECT_FALSE(Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(42.0, Parse("42").AsNumber());
  EXPECT_DOUBLE_EQ(-1.5e3, Parse("-1.5e3").AsNumber());
  EXPECT_DOUBLE_EQ(0.25, Parse("2.5e-1").AsNumber());
  EXPECT_EQ("hi", Parse("\"hi\"").AsString());
  EXPECT_EQ("", Parse("\"\"").AsString());
}

TEST(JsonParser, WhitespaceAroundDocument) {
  EXPECT_DOUBLE_EQ(7.0, Parse("  \n\t 7 \r\n").AsNumber());
}

TEST(JsonParser, Containers) {
  const JsonValue doc = Parse("{\"a\":[1,2,3],\"b\":{\"c\":true},\"d\":[]}");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(nullptr, a);
  ASSERT_EQ(3u, a->AsArray().size());
  EXPECT_DOUBLE_EQ(2.0, a->AsArray()[1].AsNumber());
  const JsonValue* c = doc.Find("b")->Find("c");
  ASSERT_NE(nullptr, c);
  EXPECT_TRUE(c->AsBool());
  EXPECT_TRUE(doc.Find("d")->AsArray().empty());
  EXPECT_EQ(nullptr, doc.Find("missing"));
}

TEST(JsonParser, ObjectsPreserveInsertionOrder) {
  const JsonValue doc = Parse("{\"z\":1,\"a\":2,\"m\":3}");
  const auto& entries = doc.AsObject();
  ASSERT_EQ(3u, entries.size());
  EXPECT_EQ("z", entries[0].first);
  EXPECT_EQ("a", entries[1].first);
  EXPECT_EQ("m", entries[2].first);
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ("a\"b\\c/d", Parse("\"a\\\"b\\\\c\\/d\"").AsString());
  EXPECT_EQ("\b\f\n\r\t", Parse("\"\\b\\f\\n\\r\\t\"").AsString());
  EXPECT_EQ(std::string("\x01"), Parse("\"\\u0001\"").AsString());
  // BMP escapes decode to UTF-8.
  EXPECT_EQ("\xc2\xa9", Parse("\"\\u00a9\"").AsString());
  EXPECT_EQ("\xe2\x82\xac", Parse("\"\\u20ac\"").AsString());
}

TEST(JsonParser, Errors) {
  const char* const kBad[] = {
      "",         "{",       "[1,",     "{\"a\"}",   "{\"a\":}",
      "tru",      "01",      "1.",      "+1",        "\"unterminated",
      "\"\\q\"",  "\"\\u12\"", "[1] extra", "{\"a\":1,}", "nan",
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "should reject: " << text;
  }
}

TEST(JsonParser, RejectsControlCharactersInStrings) {
  EXPECT_FALSE(ParseJson("\"a\nb\"").ok());
}

TEST(JsonParser, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string fine = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(ParseJson(fine).ok());
}

TEST(JsonParser, DuplicateKeysSurvive) {
  const JsonValue doc = Parse("{\"k\":1,\"k\":2}");
  ASSERT_EQ(2u, doc.AsObject().size());
  // Find returns the first.
  EXPECT_DOUBLE_EQ(1.0, doc.Find("k")->AsNumber());
}

/// JsonWriter -> ParseJson round trip over hostile strings: every key and
/// value written must come back byte-identical. This pins the escaping of
/// metric names containing quotes, backslashes, and control bytes.
TEST(JsonParser, RoundTripsHostileStringsThroughJsonWriter) {
  const std::vector<std::string> hostile = {
      "plain",
      "with \"quotes\"",
      "back\\slash",
      "new\nline and tab\t",
      std::string("nul\0byte", 8),
      "control\x01\x1f chars",
      "bell\b form\f feed",
      "utf8 \xc2\xa9 passthrough",
      "</script><b>&amp;",
  };
  JsonWriter json;
  json.BeginObject();
  for (size_t i = 0; i < hostile.size(); ++i) {
    json.Key(hostile[i]).String(hostile[i]);
  }
  json.EndObject();

  const JsonValue doc = Parse(json.str());
  const auto& entries = doc.AsObject();
  ASSERT_EQ(hostile.size(), entries.size());
  for (size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(hostile[i], entries[i].first) << "key " << i;
    EXPECT_EQ(hostile[i], entries[i].second.AsString()) << "value " << i;
  }
}

TEST(JsonParser, RoundTripsNumbers) {
  const double values[] = {0.0,    -0.0,   1.0,      -17.25,
                           1e-9,   3.5e12, 0.0005,   123456789.0,
                           1.0 / 3.0};
  for (double v : values) {
    JsonWriter json;
    json.BeginArray();
    json.Number(v);
    json.EndArray();
    const JsonValue doc = Parse(json.str());
    EXPECT_NEAR(v, doc.AsArray()[0].AsNumber(),
                1e-9 * (1.0 + std::fabs(v)));
  }
}

TEST(JsonParser, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(std::nan(""));
  json.Number(HUGE_VAL);
  json.EndArray();
  const JsonValue doc = Parse(json.str());
  EXPECT_TRUE(doc.AsArray()[0].is_null());
  EXPECT_TRUE(doc.AsArray()[1].is_null());
}

/// MetricRegistry::ToJson with hostile metric names parses and round
/// trips (satellite of DESIGN.md §10: exporters must never emit invalid
/// JSON, whatever the registry holds).
TEST(JsonParser, MetricRegistryJsonWithHostileNamesParses) {
  obs::MetricRegistry registry;
  const std::string evil = "evil\"name\\with\nnasties\x02";
  registry.counter(evil).Add(3);
  registry.gauge("ok.gauge").Set(1.5);
  registry.histogram(evil).Record(2.0);
  const JsonValue doc = Parse(registry.ToJson());
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(nullptr, counters);
  ASSERT_NE(nullptr, counters->Find(evil));
  EXPECT_DOUBLE_EQ(3.0, counters->Find(evil)->AsNumber());
  const JsonValue* histograms = doc.Find("histograms");
  ASSERT_NE(nullptr, histograms);
  EXPECT_NE(nullptr, histograms->Find(evil));
}

/// RunReport::ToJson with hostile names and text values parses.
TEST(JsonParser, RunReportJsonWithHostileContentParses) {
  obs::MetricRegistry registry;
  registry.counter("a\"b").Add(1);
  obs::RunReport report("name \"quoted\"");
  report.AddText("desc\\key", "text\nwith\nnewlines and \"quotes\"");
  report.AddMetrics(registry);
  const JsonValue doc = Parse(report.ToJson());
  ASSERT_NE(nullptr, doc.Find("name"));
  EXPECT_EQ("name \"quoted\"", doc.Find("name")->AsString());
  ASSERT_NE(nullptr, doc.Find("desc\\key"));
  EXPECT_EQ("text\nwith\nnewlines and \"quotes\"",
            doc.Find("desc\\key")->AsString());
}

}  // namespace
}  // namespace qsp
