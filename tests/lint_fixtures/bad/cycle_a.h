// Known-bad fixture: one half of a header cycle. tests/audit_test.cc
// lints this as src/util/cycle_a.h together with cycle_b.h; the pair
// forms an include cycle a -> b -> a. Keep line numbers in sync.
#ifndef QSP_LINT_FIXTURE_CYCLE_A_H_
#define QSP_LINT_FIXTURE_CYCLE_A_H_

#include "util/cycle_b.h"  // line 7: closes the cycle

namespace qsp {
struct CycleA {
  CycleB* peer;
};
}  // namespace qsp

#endif  // QSP_LINT_FIXTURE_CYCLE_A_H_
