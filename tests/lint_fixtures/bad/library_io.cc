// qsp_lint fixture: stdout writes from library code. Linted as
// FileKind::kLibrary; keep line numbers in sync with the test.
#include <cstdio>
#include <iostream>

namespace qsp {

void ReportProgress(int round) {
  std::cout << "round " << round << "\n";   // line 9
  printf("round %d\n", round);              // line 10
  puts("done");                             // line 11
}

}  // namespace qsp
