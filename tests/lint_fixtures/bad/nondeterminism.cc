// qsp_lint fixture: nondeterminism sources in library code. Linted as
// FileKind::kLibrary by tests/lint_test.cc; keep line numbers in sync.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace qsp {

double JitterSeed() {
  std::random_device entropy;                          // line 11
  return static_cast<double>(entropy() + rand());      // line 12
}

long StampPlan() {
  const long stamp = time(nullptr);                    // line 16
  auto t0 = std::chrono::steady_clock::now();          // line 17
  (void)t0;
  return stamp;
}

}  // namespace qsp
