// Known-bad fixture: the other half of the header cycle with cycle_a.h.
#ifndef QSP_LINT_FIXTURE_CYCLE_B_H_
#define QSP_LINT_FIXTURE_CYCLE_B_H_

#include "util/cycle_a.h"

namespace qsp {
struct CycleA;
struct CycleB {
  CycleA* peer;
};
}  // namespace qsp

#endif  // QSP_LINT_FIXTURE_CYCLE_B_H_
