// Known-bad fixture: includes a project header but references none of
// the names it (or anything it includes) provides — dead weight the
// unused-include rule reports. tests/audit_test.cc lints this as
// src/util/unused.cc against a stub src/util/helper.h. Keep line
// numbers in sync.
#include "util/helper.h"  // line 6: nothing from helper.h is used

namespace qsp {

int Twice(int x) { return 2 * x; }

}  // namespace qsp
