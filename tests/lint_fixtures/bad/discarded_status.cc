// qsp_lint fixture: every way to silently drop a Status/Result.
// Not compiled — linted by tests/lint_test.cc, which asserts the exact
// lines below fire. Keep line numbers in sync with the test.
#include <string>

namespace qsp {

class Status {};
template <typename T>
class Result {};

Status SaveCheckpoint(const std::string& path);
Result<int> FetchRowCount();

struct Store {
  Status Flush();
};

void Caller(Store& store) {
  SaveCheckpoint("plan.bin");             // line 20: bare drop
  store.Flush();                          // line 21: member-call drop
  (void)SaveCheckpoint("plan.bin");       // line 22: raw void cast
  static_cast<void>(FetchRowCount());     // line 23: raw static_cast
}

}  // namespace qsp
