// qsp_lint fixture: malformed metric/span names handed to the obs API.
// Linted as FileKind::kLibrary; keep line numbers in sync with the test.
#include <string>

namespace qsp {

void Record(double v, const std::string& dynamic) {
  obs::Count("Merge.runs");                       // line 8: uppercase
  obs::Count("runs");                             // line 9: one segment
  obs::SetGauge("plan.est.cost.total.extra", v);  // line 10: five segments
  obs::Observe("net..latency_us", v);             // line 11: empty segment
  obs::Count("merge.pair merging.runs");          // line 12: space
  obs::Count("merge." + dynamic);                 // line 13: concatenated
  obs::ScopedTimer timer(".plan.latency_us");     // line 14: leading dot
  obs::ScopedSpan span("Broadcast");              // line 15: uppercase span
  obs::ScopedSpan other("plan.merge");            // line 16: dots in a span
  obs::Count(dynamic);          // dynamic names are not checkable: silent
  obs::Count("merge.heap.pops", 3);               // well-formed: silent
  obs::ScopedSpan fine("broadcast/ch0");          // well-formed: silent
}

}  // namespace qsp
