// qsp_lint fixture: planner decisions fed by unordered iteration order.
// Linted as FileKind::kLibrary; keep line numbers in sync with the test.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace qsp {

struct Planner {
  std::unordered_map<int, double> benefit_cache_;
  std::unordered_set<int> frontier_;

  std::vector<int> PickOrder() const {
    std::vector<int> order;
    for (const auto& entry : benefit_cache_) {        // line 15
      order.push_back(entry.first);
    }
    for (int id : frontier_) {                        // line 18
      order.push_back(id);
    }
    return order;
  }
};

}  // namespace qsp
