// Known-bad fixture: a stored std::function invoked while the owning
// object's mutex is held — the PR 8 bug class. The callee is arbitrary
// user code that can call back into Notifier and deadlock.
// tests/audit_test.cc pins the exact (line, rule) pairs; keep line
// numbers in sync when editing.
#include <functional>
#include <mutex>

namespace qsp {

class Notifier {
 public:
  void SetCallback(std::function<void()> cb) {
    std::lock_guard<std::mutex> lock(mu_);
    cb_ = std::move(cb);
  }

  void Fire() {
    std::lock_guard<std::mutex> lock(mu_);
    cb_();  // line 20: callback invoked with mu_ held
  }

 private:
  std::mutex mu_;
  std::function<void()> cb_;
};

}  // namespace qsp
