// qsp_lint fixture: ServiceConfig feature knobs consumed without their
// gates. Linted as FileKind::kLibrary with a non-core path; keep line
// numbers in sync with the test.

namespace qsp {

struct FaultPolicy {
  double drop_rate = 0.0;
  int max_retx = 0;
};

struct ServiceConfig {
  FaultPolicy fault;
  bool telemetry = false;
  bool pruning = true;
};

double LossBudget(const ServiceConfig& config) {
  return config.fault.drop_rate * config.fault.max_retx;  // line 19 (x2)
}

bool ShouldTrace(const ServiceConfig& config) {
  return config.telemetry;                                // line 23
}

bool UsePruning(const ServiceConfig& config) {
  return config.pruning;                                  // line 27
}

}  // namespace qsp
