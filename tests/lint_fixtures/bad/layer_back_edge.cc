// Known-bad fixture: linted with the corpus path src/geom/uses_merge.cc
// (tests/audit_test.cc assigns the path), so this include reaches UP the
// layer DAG from geom (rank 10) into merge (rank 40) — a layering
// back-edge. Keep line numbers in sync with audit_test.cc.
#include "merge/planner_stub.h"  // line 5: geom -> merge back-edge

namespace qsp {

double UsesMergeFromGeom() { return PlannerStubCost(); }

}  // namespace qsp
