// Known-bad fixture: classic two-mutex deadlock. Transfer() locks a_
// then b_; Audit() locks b_ then a_ — the lock-order graph has the
// cycle A::a_ -> A::b_ -> A::a_. tests/audit_test.cc pins the exact
// (line, rule) pairs below; keep line numbers in sync when editing.
#include <mutex>

namespace qsp {

class Ledger {
 public:
  void Transfer() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);  // line 13: edge a_ -> b_
    ++balance_;
  }

  void Audit() {
    std::lock_guard<std::mutex> lb(b_);
    std::lock_guard<std::mutex> la(a_);  // line 19: edge b_ -> a_
    ++checks_;
  }

 private:
  std::mutex a_;
  std::mutex b_;
  int balance_ = 0;
  int checks_ = 0;
};

}  // namespace qsp
