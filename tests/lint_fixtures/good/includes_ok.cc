// Known-good fixture: a downward include (util, rank 0, from a geom
// file at rank 10) whose provided names are actually used — none of the
// include rules fire. tests/audit_test.cc lints this as
// src/geom/uses_util.cc against a stub src/util/helper.h that declares
// HelperValue.
#include "util/helper.h"

namespace qsp {

int UsesHelper() { return HelperValue(); }

}  // namespace qsp
