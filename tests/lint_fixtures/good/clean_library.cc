// qsp_lint fixture: library code that exercises the patterns next door
// in bad/ the *right* way. tests/lint_test.cc asserts zero findings.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace qsp {

class Status {
 public:
  bool ok() const { return true; }
};
template <typename T>
class Result {};

#define QSP_IGNORE_RESULT(expr) static_cast<void>(expr)

Status SaveCheckpoint(const std::string& path);
Result<int> FetchRowCount();

struct FaultPolicy {
  double drop_rate = 0.0;
  bool Engaged() const { return drop_rate > 0.0; }
};

struct ServiceConfig {
  FaultPolicy fault;
};

void Caller() {
  // Handled result: fine.
  const Status status = SaveCheckpoint("plan.bin");
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint failed\n");  // stderr is allowed
  }
  // Sanctioned drop: best-effort persistence, failure already logged.
  QSP_IGNORE_RESULT(SaveCheckpoint("plan.bak"));
}

double GatedLossBudget(const ServiceConfig& config) {
  // Knob read behind its gate: fine.
  if (!config.fault.Engaged()) return 0.0;
  return config.fault.drop_rate;
}

void ConfigureFault(ServiceConfig& config) {
  config.fault.drop_rate = 0.25;  // writes configure, never gated
}

std::vector<int> DeterministicOrder(
    const std::unordered_map<int, double>& weights) {
  // Unordered lookups are fine; only iteration order is banned. Feed
  // decisions through an ordered copy.
  std::map<int, double> sorted(weights.begin(), weights.end());
  std::vector<int> order;
  for (const auto& entry : sorted) {
    order.push_back(entry.first);
  }
  return order;
}

}  // namespace qsp
