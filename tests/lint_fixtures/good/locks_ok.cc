// Known-good fixture: correct lock discipline that superficially
// resembles the bad corpus. Both methods take a_ before b_ (consistent
// global order, no cycle), and the callback is copied out and invoked
// AFTER the guard releases the mutex — the post-PR 8 pattern
// LivePlanManager::ProcessBatch uses. tests/audit_test.cc asserts the
// audit is zero-finding here.
#include <functional>
#include <mutex>
#include <utility>

namespace qsp {

class Ledger {
 public:
  void Transfer() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
    ++balance_;
  }

  void Audit() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
    ++checks_;
  }

  void SetCallback(std::function<void()> cb) {
    std::lock_guard<std::mutex> lock(mu_);
    cb_ = std::move(cb);
  }

  void Fire() {
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cb = cb_;
    }
    if (cb) cb();  // mutex already released: not a finding
  }

  void FireUnlockStyle() {
    std::unique_lock<std::mutex> lock(mu_);
    auto cb = cb_;
    lock.unlock();
    if (cb) cb();  // guard explicitly unlocked first: not a finding
  }

 private:
  std::mutex a_;
  std::mutex b_;
  std::mutex mu_;
  std::function<void()> cb_;
  int balance_ = 0;
  int checks_ = 0;
};

}  // namespace qsp
