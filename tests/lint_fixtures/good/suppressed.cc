// qsp_lint fixture: the suppression marker. Each banned pattern below
// carries a `qsp-lint: allow(<rule>) <reason>` comment, so the file must
// lint clean; the test also checks that the same code WITHOUT markers
// fires (bad/ corpus).
#include <ctime>

namespace qsp {

long BootstrapEpoch() {
  // One-time startup stamp recorded into the run report, never read by
  // the planner.
  return time(nullptr);  // qsp-lint: allow(nondeterminism) startup stamp
}

}  // namespace qsp
