// qsp_lint fixture: well-formed metric and span names — the rule must
// stay silent on all of these (FileKind::kLibrary).
#include <string>

namespace qsp {

void Record(double v, const std::string& dynamic, int channel) {
  obs::Count("merge.pair-merging.runs");
  obs::Count("net.round.payload_bytes", 7);
  obs::SetGauge("plan.est.cost", v);
  obs::Observe("core.plan.latency_us", v);
  obs::ScopedTimer timer("core.round.latency_us");
  obs::ScopedSpan span("plan");
  obs::ScopedSpan sub("broadcast/ch3");
  obs::ScopedSpan built("retx" + std::to_string(channel));
  obs::ScopedSpan nested("merge/" + dynamic);
  obs::Count(dynamic);  // Dynamic names are the caller's problem.
  registry.counter("ctx.size_cache.hits");
  registry.gauge("plan.num_groups");
  registry.histogram("net.round.latency_us");
}

}  // namespace qsp
