#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace qsp {
namespace {

ScenarioConfig SmallScenario(uint64_t seed) {
  ScenarioConfig config;
  config.objects.domain = Rect(0, 0, 100, 100);
  config.objects.num_objects = 800;
  config.objects.payload_fields = 0;
  config.workload.num_queries = 12;
  config.workload.cf = 0.7;
  config.num_clients = 4;
  config.service.cost_model = {3.0, 1.0, 0.5, 0.0};
  config.service.estimator = EstimatorKind::kExact;
  config.rounds = 1;
  config.seed = seed;
  return config;
}

TEST(ScenarioTest, RejectsBadConfigs) {
  ScenarioConfig config = SmallScenario(1);
  config.rounds = 0;
  EXPECT_FALSE(RunScenario(config).ok());
  config = SmallScenario(1);
  config.num_clients = 0;
  EXPECT_FALSE(RunScenario(config).ok());
}

TEST(ScenarioTest, RunsEndToEndCorrectly) {
  auto result = RunScenario(SmallScenario(2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->all_correct);
  ASSERT_EQ(result->rounds.size(), 1u);
  EXPECT_GT(result->rounds[0].num_messages, 0u);
  EXPECT_LE(result->plan.estimated_cost, result->plan.initial_cost + 1e-9);
}

TEST(ScenarioTest, DeterministicInSeed) {
  auto a = RunScenario(SmallScenario(3));
  auto b = RunScenario(SmallScenario(3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rounds[0].num_messages, b->rounds[0].num_messages);
  EXPECT_EQ(a->rounds[0].payload_rows, b->rounds[0].payload_rows);
  EXPECT_DOUBLE_EQ(a->plan.estimated_cost, b->plan.estimated_cost);
}

TEST(ScenarioTest, MultiRoundRunsStably) {
  ScenarioConfig config = SmallScenario(4);
  config.rounds = 3;
  auto result = RunScenario(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rounds.size(), 3u);
  EXPECT_TRUE(result->all_correct);
  // Static data + static plan => identical traffic per round.
  EXPECT_EQ(result->rounds[0].payload_rows, result->rounds[2].payload_rows);
}

TEST(ScenarioTest, ClientCacheHitsAppearInLaterRounds) {
  ScenarioConfig config = SmallScenario(5);
  config.rounds = 3;
  config.service.client_cache = true;
  auto result = RunScenario(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rounds[0].cache_hits, 0u);
  // Static data: every row a client sees in round 2+ was already cached.
  EXPECT_GT(result->rounds[1].cache_hits, 0u);
  EXPECT_EQ(result->rounds[1].cache_hits, result->rounds[1].rows_examined);
}

TEST(ScenarioTest, MultiChannelScenario) {
  ScenarioConfig config = SmallScenario(6);
  config.service.num_channels = 2;
  config.service.cost_model.k_check = 1.0;
  config.num_clients = 5;
  auto result = RunScenario(config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->all_correct);
  EXPECT_LE(result->rounds[0].channels_used, 2u);
}

TEST(ScenarioTest, TagExtractionScenario) {
  ScenarioConfig config = SmallScenario(7);
  config.service.extraction = ExtractionMode::kServerTags;
  auto result = RunScenario(config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->all_correct);
}

}  // namespace
}  // namespace qsp
