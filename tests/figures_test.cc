// Regression guards for the figure-reproduction pipelines: miniature
// versions of each experiment with loose thresholds, so a change that
// silently breaks an experiment harness (not just a library function)
// fails CI. Full-size runs live in bench/.

#include <gtest/gtest.h>

#include <memory>

#include "channel/channel_cost.h"
#include "channel/exhaustive_allocator.h"
#include "channel/hill_climb_allocator.h"
#include "cost/cost_model.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// The bench_common.h experiment setup, duplicated intentionally: if the
/// bench helper drifts, these tests still pin the paper's setting.
QueryGenConfig PaperWorkload(size_t n) {
  QueryGenConfig config;
  config.domain = Rect(0, 0, 1000, 1000);
  config.num_queries = n;
  config.cf = 0.8;
  config.sf = 0.5;
  config.df = 0.03;
  config.min_extent = 0.02;
  config.max_extent = 0.10;
  return config;
}

constexpr double kDensity = 0.001;
const CostModel kModel{10.0, 9.0, 4.0, 0.0};

TEST(Fig16Regression, PairMergingMostlyOptimalOnSmallInstances) {
  const PairMerger pair;
  const PartitionMerger exact;
  int optimal = 0, trials = 0;
  for (int n = 4; n <= 8; n += 2) {
    for (uint64_t t = 0; t < 12; ++t) {
      Rng rng(1000 * static_cast<uint64_t>(n) + t);
      QuerySet queries(GenerateQueries(PaperWorkload(static_cast<size_t>(n)),
                                       &rng));
      UniformDensityEstimator estimator(kDensity);
      BoundingRectProcedure procedure;
      MergeContext ctx(&queries, &estimator, &procedure);
      auto greedy = pair.Merge(ctx, kModel);
      auto optimum = exact.Merge(ctx, kModel);
      ASSERT_TRUE(greedy.ok());
      ASSERT_TRUE(optimum.ok());
      ++trials;
      if (greedy->cost <= optimum->cost + 1e-9) ++optimal;
      // Fig 17 metric must stay in [0, 1] by construction.
      const double initial = kModel.InitialCost(ctx);
      EXPECT_GE(initial + 1e-9, greedy->cost);
      EXPECT_GE(greedy->cost + 1e-9, optimum->cost);
    }
  }
  // Paper: ~97%. Anything under 80% on these easy sizes is a regression.
  EXPECT_GE(static_cast<double>(optimal) / trials, 0.8);
}

TEST(Fig18Regression, AllocationHeuristicMostlyOptimal) {
  CostModel model = kModel;
  model.k_check = 3.0;
  int optimal = 0, trials = 0;
  for (uint64_t t = 0; t < 12; ++t) {
    Rng rng(5000 + t);
    QuerySet queries(GenerateQueries(PaperWorkload(12), &rng));
    UniformDensityEstimator estimator(kDensity);
    BoundingRectProcedure procedure;
    MergeContext ctx(&queries, &estimator, &procedure);
    ClientSet clients =
        AssignClients(queries, 6, ClientAssignment::kRandom, &rng);
    ChannelCostEvaluator evaluator(&ctx, model, &clients);
    ExhaustiveAllocator exact;
    HillClimbAllocator heuristic(StartPolicy::kBestOfBoth, t);
    auto optimum = exact.Allocate(evaluator, 2);
    auto result = heuristic.Allocate(evaluator, 2);
    ASSERT_TRUE(optimum.ok());
    ASSERT_TRUE(result.ok());
    ++trials;
    if (result->cost <= optimum->cost + 1e-9) ++optimal;
    EXPECT_GE(result->cost + 1e-9, optimum->cost);
  }
  // Paper: 88.6% for best-of-both. Alert under 50%.
  EXPECT_GE(static_cast<double>(optimal) / trials, 0.5);
}

TEST(AppendixRegression, ThreeQueryExampleNumbersPinned) {
  QuerySet queries({Rect(0, 1, 2, 2), Rect(1, 0, 2, 2), Rect(0, 0, 1, 1)});
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{10, 9, 4, 0};
  EXPECT_DOUBLE_EQ(model.PartitionCost(ctx, SingletonPartition(3)), 75.0);
  EXPECT_DOUBLE_EQ(model.PartitionCost(ctx, {{0, 1}, {2}}), 81.0);
  EXPECT_DOUBLE_EQ(model.PartitionCost(ctx, {{0, 1, 2}}), 74.0);
}

}  // namespace
}  // namespace qsp
