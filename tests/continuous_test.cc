#include <gtest/gtest.h>

#include <tuple>

#include "sim/continuous.h"

namespace qsp {
namespace {

ContinuousConfig SmallConfig(uint64_t seed) {
  ContinuousConfig config;
  config.rounds = 8;
  config.inserts_per_round = 200;
  config.initial_queries = 12;
  config.arrivals_per_round = 2;
  config.departures_per_round = 2;
  config.seed = seed;
  return config;
}

TEST(ContinuousTest, RejectsNonPositiveRounds) {
  ContinuousConfig config = SmallConfig(1);
  config.rounds = 0;
  EXPECT_FALSE(RunContinuous(config).ok());
}

TEST(ContinuousTest, ProducesOneStatsPerRound) {
  auto outcome = RunContinuous(SmallConfig(1));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rounds.size(), 8u);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(outcome->rounds[static_cast<size_t>(r)].round, r);
  }
}

TEST(ContinuousTest, ChurnTracksArrivalsAndDepartures) {
  auto outcome = RunContinuous(SmallConfig(2));
  ASSERT_TRUE(outcome.ok());
  // 12 initial, +2/-2 per round => constant 12.
  for (const auto& round : outcome->rounds) {
    EXPECT_EQ(round.active_queries, 12u);
  }
}

TEST(ContinuousTest, GrowingPopulationWhenArrivalsExceedDepartures) {
  ContinuousConfig config = SmallConfig(3);
  config.arrivals_per_round = 4;
  config.departures_per_round = 1;
  auto outcome = RunContinuous(config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rounds.back().active_queries, 12u + 8u * 3u);
}

TEST(ContinuousTest, TotalsAggregateRounds) {
  auto outcome = RunContinuous(SmallConfig(4));
  ASSERT_TRUE(outcome.ok());
  size_t messages = 0, delta = 0;
  for (const auto& round : outcome->rounds) {
    messages += round.messages;
    delta += round.delta_rows;
  }
  EXPECT_EQ(outcome->total_messages, messages);
  EXPECT_EQ(outcome->total_delta_rows, delta);
}

TEST(ContinuousTest, DeterministicInSeed) {
  auto a = RunContinuous(SmallConfig(9));
  auto b = RunContinuous(SmallConfig(9));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_messages, b->total_messages);
  EXPECT_EQ(a->total_delta_rows, b->total_delta_rows);
  EXPECT_EQ(a->total_irrelevant_rows, b->total_irrelevant_rows);
}

/// The core correctness property: under every maintenance policy and
/// several seeds, every subscriber's per-round delta is exact.
class ContinuousCorrectness
    : public ::testing::TestWithParam<std::tuple<PlanMaintenance, uint64_t>> {
};

TEST_P(ContinuousCorrectness, AllDeltasExact) {
  ContinuousConfig config = SmallConfig(std::get<1>(GetParam()));
  config.maintenance = std::get<0>(GetParam());
  auto outcome = RunContinuous(config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->all_deltas_correct);
  EXPECT_GT(outcome->total_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ContinuousCorrectness,
    ::testing::Combine(
        ::testing::Values(PlanMaintenance::kIncremental,
                          PlanMaintenance::kIncrementalRepair,
                          PlanMaintenance::kReplanEachRound),
        ::testing::Values(100, 200, 300)));

TEST(ContinuousTest, ReplanSpendsMoreMaintenanceWorkThanIncremental) {
  ContinuousConfig incremental = SmallConfig(7);
  incremental.maintenance = PlanMaintenance::kIncremental;
  ContinuousConfig replan = SmallConfig(7);
  replan.maintenance = PlanMaintenance::kReplanEachRound;
  auto a = RunContinuous(incremental);
  auto b = RunContinuous(replan);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->total_maintenance_evals, b->total_maintenance_evals);
}

TEST(ContinuousTest, RepairPlansAreNoWorseThanPlainIncremental) {
  ContinuousConfig plain = SmallConfig(8);
  plain.maintenance = PlanMaintenance::kIncremental;
  ContinuousConfig repaired = SmallConfig(8);
  repaired.maintenance = PlanMaintenance::kIncrementalRepair;
  auto a = RunContinuous(plain);
  auto b = RunContinuous(repaired);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->rounds.back().plan_cost, a->rounds.back().plan_cost + 1e-9);
}

}  // namespace
}  // namespace qsp
