// Lease, admission, repair, and replan semantics of the long-lived
// service loop (DESIGN.md §11), all under an injected FakeClock so
// every timing assertion is exact and every run is reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "core/live_plan.h"
#include "core/subscription_service.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "relation/generator.h"
#include "sim/churn.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

class LiveServiceTest : public ::testing::Test {
 protected:
  LiveServiceTest()
      : estimator_(0.0005), ctx_(&queries_, &estimator_, &procedure_),
        clock_(0.0) {}

  /// Live config wired to the frozen test clock: time only moves when a
  /// test calls clock_.AdvanceMicros.
  LiveServiceConfig Opts() {
    LiveServiceConfig opts;
    opts.enabled = true;
    opts.clock = &clock_;
    opts.default_ttl_ms = 30;
    return opts;
  }

  Rect At(double x, double y) const { return Rect(x, y, x + 10, y + 10); }

  QuerySet queries_;
  UniformDensityEstimator estimator_;
  BoundingRectProcedure procedure_;
  MergeContext ctx_;
  obs::FakeClock clock_;
  CostModel model_{10.0, 1.0, 0.5, 0.0};
};

TEST_F(LiveServiceTest, RenewalExtendsLease) {
  LivePlanManager live(&queries_, &ctx_, model_, Opts());
  Result<QueryId> id = live.Subscribe(At(0, 0), 30);
  ASSERT_TRUE(id.ok());
  live.DrainAll();

  clock_.AdvanceMicros(20000);  // t = 20ms, deadline 30ms.
  ASSERT_TRUE(live.Renew(id.value(), 30).ok());  // Deadline -> 50ms.
  clock_.AdvanceMicros(20000);                   // t = 40ms.
  EXPECT_EQ(live.SweepExpired(), 0u);
  EXPECT_EQ(live.LiveIds(), std::vector<QueryId>{id.value()});

  clock_.AdvanceMicros(10000);  // t = 50ms: exactly the renewed deadline.
  EXPECT_EQ(live.SweepExpired(), 1u);
  live.DrainAll();
  EXPECT_TRUE(live.LiveIds().empty());
  EXPECT_TRUE(live.PlanSnapshot().empty());
}

TEST_F(LiveServiceTest, MissedHeartbeatExpiresExactlyAtTtl) {
  LivePlanManager live(&queries_, &ctx_, model_, Opts());
  ASSERT_TRUE(live.Subscribe(At(0, 0), 30).ok());
  live.DrainAll();

  clock_.AdvanceMicros(29999);  // One microsecond before the deadline.
  EXPECT_EQ(live.SweepExpired(), 0u);
  clock_.AdvanceMicros(1);  // now == deadline: the lease is gone.
  EXPECT_EQ(live.SweepExpired(), 1u);
  EXPECT_EQ(live.Stats().expired, 1u);
}

TEST_F(LiveServiceTest, RenewAfterExpiryIsNotFoundAndRejoinGetsNewId) {
  LivePlanManager live(&queries_, &ctx_, model_, Opts());
  Result<QueryId> id = live.Subscribe(At(0, 0), 30);
  ASSERT_TRUE(id.ok());
  live.DrainAll();
  clock_.AdvanceMicros(30000);
  ASSERT_EQ(live.SweepExpired(), 1u);

  // The crashed client's heartbeat bounces; it must re-subscribe.
  EXPECT_EQ(live.Renew(id.value(), 30).code(), StatusCode::kNotFound);
  Result<QueryId> rejoin = live.Subscribe(At(0, 0), 30);
  ASSERT_TRUE(rejoin.ok());
  EXPECT_NE(rejoin.value(), id.value());
  live.DrainAll();
  EXPECT_EQ(live.LiveIds(), std::vector<QueryId>{rejoin.value()});
}

TEST_F(LiveServiceTest, ZeroTtlNeverExpires) {
  LiveServiceConfig opts = Opts();
  opts.default_ttl_ms = 0;
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  ASSERT_TRUE(live.Subscribe(At(0, 0), 0).ok());
  live.DrainAll();
  clock_.AdvanceMicros(1e12);
  EXPECT_EQ(live.SweepExpired(), 0u);
  EXPECT_EQ(live.LiveIds().size(), 1u);
}

TEST_F(LiveServiceTest, ExpiryOfStillQueuedSubscriptionIsSafe) {
  // A subscription whose lease lapses while its admission is still
  // queued: FIFO ordering guarantees the add is applied before the
  // expiry's remove, so the plan transits through a consistent state.
  LiveServiceConfig opts = Opts();
  opts.admission_batch_max = 1;  // Force the ops into separate batches.
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  Result<QueryId> doomed = live.Subscribe(At(0, 0), 30);
  ASSERT_TRUE(doomed.ok());
  clock_.AdvanceMicros(30000);
  ASSERT_EQ(live.SweepExpired(), 1u);  // Expired while still kPending.
  Result<QueryId> keeper = live.Subscribe(At(50, 50), 0);
  ASSERT_TRUE(keeper.ok());

  const BatchReport report = live.DrainAll();
  EXPECT_EQ(report.admitted, 2u);
  EXPECT_EQ(report.removed, 1u);
  ASSERT_EQ(report.retired.size(), 1u);
  EXPECT_EQ(report.retired[0], doomed.value());
  EXPECT_EQ(live.LiveIds(), std::vector<QueryId>{keeper.value()});
}

TEST_F(LiveServiceTest, BackpressureShedsSubscribesButNeverRemoves) {
  LiveServiceConfig opts = Opts();
  opts.admission_queue_limit = 2;
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  Result<QueryId> a = live.Subscribe(At(0, 0), 0);
  Result<QueryId> b = live.Subscribe(At(20, 0), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Queue is at the limit: the next admission is shed with a retryable
  // status, and no query id leaks into the set.
  const size_t queries_before = queries_.size();
  Result<QueryId> shed = live.Subscribe(At(40, 0), 0);
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queries_.size(), queries_before);
  EXPECT_EQ(live.Stats().sheds, 1u);

  // Removes always enqueue, even over the limit — shedding a departure
  // would leak the lease.
  EXPECT_TRUE(live.Unsubscribe(a.value()).ok());
  live.DrainAll();
  EXPECT_EQ(live.LiveIds(), std::vector<QueryId>{b.value()});
  EXPECT_EQ(live.Stats().queue_depth, 0u);

  // After the backlog drains, admission works again.
  EXPECT_TRUE(live.Subscribe(At(40, 0), 0).ok());
}

TEST_F(LiveServiceTest, RepairDeadlineStopsMovesDeterministically) {
  // A ticking clock makes control time pass inside the batch: with a
  // 1us deadline the very first deadline check fires, so the batch
  // admits its ops but spends zero repair moves.
  obs::FakeClock ticking(5.0);
  LiveServiceConfig opts = Opts();
  opts.clock = &ticking;
  opts.repair_max_moves = 0;
  opts.repair_deadline_us = 1;
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  Rng rng(11);
  QueryGenConfig shape;
  shape.num_queries = 16;
  shape.cf = 0.8;
  for (const Rect& r : GenerateQueries(shape, &rng)) {
    ASSERT_TRUE(live.Subscribe(r, 0).ok());
  }
  const BatchReport report = live.DrainAll();
  EXPECT_TRUE(report.repair_deadline_hit);
  EXPECT_EQ(report.repair_moves, 0);
  EXPECT_EQ(live.LiveIds().size(), 16u);

  // Same workload with no deadline: repair runs to a local minimum and
  // never ends up costlier than the deadline-starved plan.
  QuerySet queries2;
  MergeContext ctx2(&queries2, &estimator_, &procedure_);
  LiveServiceConfig opts2 = Opts();
  opts2.repair_max_moves = 0;
  LivePlanManager unbounded(&queries2, &ctx2, model_, opts2);
  Rng rng2(11);
  for (const Rect& r : GenerateQueries(shape, &rng2)) {
    ASSERT_TRUE(unbounded.Subscribe(r, 0).ok());
  }
  const BatchReport full = unbounded.DrainAll();
  EXPECT_FALSE(full.repair_deadline_hit);
  EXPECT_LE(unbounded.cost(), live.cost() + 1e-9);
}

TEST_F(LiveServiceTest, DriftTriggerReplansAndAdoptionImproves) {
  LiveServiceConfig opts = Opts();
  opts.repair_max_moves = -1;      // Greedy placement only: drift builds.
  opts.replan_drift_factor = 1.01;  // The LB is loose; this always trips.
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  Rng rng(21);
  QueryGenConfig shape;
  shape.num_queries = 24;
  shape.cf = 0.7;
  for (const Rect& r : GenerateQueries(shape, &rng)) {
    ASSERT_TRUE(live.Subscribe(r, 0).ok());
  }
  const double greedy_cost = [&] {
    LiveServiceConfig plain = Opts();
    plain.repair_max_moves = -1;
    QuerySet queries2;
    MergeContext ctx2(&queries2, &estimator_, &procedure_);
    LivePlanManager baseline(&queries2, &ctx2, model_, plain);
    Rng rng2(21);
    for (const Rect& r : GenerateQueries(shape, &rng2)) {
      QSP_IGNORE_RESULT(baseline.Subscribe(r, 0));
    }
    baseline.DrainAll();
    return baseline.cost();
  }();

  const BatchReport report = live.DrainAll();
  EXPECT_TRUE(report.replan_triggered);
  EXPECT_TRUE(report.replan_adopted);
  EXPECT_GE(live.Stats().replans_adopted, 1u);
  EXPECT_GT(live.Stats().replan_evaluations, 0u);
  // The adopted from-scratch plan can only improve on pure greedy.
  EXPECT_LE(live.cost(), greedy_cost + 1e-9);
  // Every live lease survived the swap.
  EXPECT_EQ(live.LiveIds().size(), 24u);
}

// Regression for the silently-ignored shards knob: live mode with
// shards > 1 used to plan drift replans unsharded. Now the snapshot
// routes through ShardedPlanner, and the adopted plan's maintained cost
// must equal a from-scratch recomputation on a fresh context — the
// sharded path must not grade its own homework through a stale memo —
// while staying close to the unsharded replan's quality.
TEST_F(LiveServiceTest, ShardedReplanCostMatchesFreshRecomputation) {
  Rng rng(51);
  QueryGenConfig shape;
  shape.num_queries = 48;
  shape.cf = 0.7;
  const std::vector<Rect> rects = GenerateQueries(shape, &rng);

  LiveServiceConfig sharded_opts = Opts();
  sharded_opts.shards = 4;
  LivePlanManager sharded(&queries_, &ctx_, model_, sharded_opts);
  for (const Rect& r : rects) ASSERT_TRUE(sharded.Subscribe(r, 0).ok());
  sharded.DrainAll();

  QuerySet queries2;
  MergeContext ctx2(&queries2, &estimator_, &procedure_);
  LivePlanManager unsharded(&queries2, &ctx2, model_, Opts());
  for (const Rect& r : rects) ASSERT_TRUE(unsharded.Subscribe(r, 0).ok());
  unsharded.DrainAll();

  // The sharded replan must actually fan out: the planner publishes its
  // shard count, which stays > 1 only when the knob is honored.
  obs::SetEnabled(true);
  obs::SetGauge("plan.shard.count", 0.0);
  ASSERT_TRUE(sharded.ReplanNow().ok());
  EXPECT_GE(obs::MetricRegistry::Default().GaugeValue("plan.shard.count"),
            2.0);
  obs::SetEnabled(false);
  ASSERT_TRUE(unsharded.ReplanNow().ok());
  EXPECT_GE(sharded.Stats().replans_adopted, 1u);
  EXPECT_GE(unsharded.Stats().replans_adopted, 1u);

  // Every lease survived both swaps.
  ASSERT_EQ(sharded.LiveIds().size(), rects.size());
  ASSERT_EQ(unsharded.LiveIds().size(), rects.size());

  // Maintained cost == fresh-context recomputation, for both paths.
  {
    MergeContext fresh(&queries_, &estimator_, &procedure_);
    EXPECT_DOUBLE_EQ(sharded.cost(),
                     model_.PartitionCost(fresh, sharded.PlanSnapshot()));
  }
  {
    MergeContext fresh(&queries2, &estimator_, &procedure_);
    EXPECT_DOUBLE_EQ(unsharded.cost(),
                     model_.PartitionCost(fresh, unsharded.PlanSnapshot()));
  }
  // Sharding trades a bounded amount of plan quality for parallel
  // planning; at this scale the plans must stay close.
  EXPECT_LE(sharded.cost(), unsharded.cost() * 1.10 + 1e-9);
}

TEST_F(LiveServiceTest, InjectedReplanFailureLeavesOldPlanServing) {
  LiveServiceConfig opts = Opts();
  opts.inject_replan_failure = true;
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  Rng rng(31);
  QueryGenConfig shape;
  shape.num_queries = 12;
  for (const Rect& r : GenerateQueries(shape, &rng)) {
    ASSERT_TRUE(live.Subscribe(r, 0).ok());
  }
  live.DrainAll();
  const Partition before = live.PlanSnapshot();
  const double cost_before = live.cost();

  const Status status = live.ReplanNow();
  EXPECT_FALSE(status.ok());
  // Graceful degradation: the abandonment is visible, the plan is not.
  EXPECT_EQ(live.Stats().replans_abandoned, 1u);
  EXPECT_EQ(live.Stats().replans_adopted, 0u);
  EXPECT_EQ(live.PlanSnapshot(), before);
  EXPECT_EQ(live.cost(), cost_before);
}

TEST_F(LiveServiceTest, LateBackgroundReplanIsAbandoned) {
  LiveServiceConfig opts = Opts();
  opts.repair_max_moves = -1;
  opts.replan_background = true;
  opts.replan_drift_factor = 1.01;   // Always trips (the LB is loose).
  opts.replan_deadline_us = 1;       // Any control-clock delay is late.
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  Rng rng(41);
  QueryGenConfig shape;
  shape.num_queries = 16;
  shape.cf = 0.7;
  for (const Rect& r : GenerateQueries(shape, &rng)) {
    ASSERT_TRUE(live.Subscribe(r, 0).ok());
  }
  live.DrainAll();  // Admits everyone and kicks off a background replan.
  const Partition before = live.PlanSnapshot();

  // Control time passes while the replan runs; every adoption attempt
  // sees an expired deadline and abandons. Bounded retry loop because
  // the background thread's completion is real-time, not control-time.
  uint64_t abandoned = 0;
  for (int i = 0; i < 2000 && abandoned == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    clock_.AdvanceMicros(1000.0);
    live.ProcessBatch();
    abandoned = live.Stats().replans_abandoned;
  }
  EXPECT_GE(abandoned, 1u);
  EXPECT_EQ(live.Stats().replans_adopted, 0u);
  // The service never went planless and never swapped in the late plan.
  EXPECT_EQ(live.PlanSnapshot(), before);
}

TEST_F(LiveServiceTest, BackgroundTickSweepsAndDrains) {
  // The periodic sweep-and-drain thread (sweep_interval_ms) admits
  // queued subscriptions without explicit ProcessBatch calls. Real
  // clock on purpose: the tick sleeps in real time.
  LiveServiceConfig opts;
  opts.enabled = true;
  opts.sweep_interval_ms = 1;
  LivePlanManager live(&queries_, &ctx_, model_, opts);
  live.StartBackground();
  ASSERT_TRUE(live.Subscribe(At(0, 0), 0).ok());
  size_t active = 0;
  for (int i = 0; i < 5000 && active == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    active = live.Stats().active;
  }
  live.StopBackground();
  EXPECT_EQ(active, 1u);
  EXPECT_EQ(live.LiveIds().size(), 1u);
}

TEST_F(LiveServiceTest, ProcessBatchOnEmptyQueueIsSafe) {
  LivePlanManager live(&queries_, &ctx_, model_, Opts());
  const BatchReport report = live.ProcessBatch();
  EXPECT_EQ(report.admitted, 0u);
  EXPECT_EQ(report.removed, 0u);
  EXPECT_EQ(live.cost(), 0.0);
  EXPECT_EQ(live.Unsubscribe(123).code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// SubscriptionService facade in live mode.

Table LiveWorldTable(uint64_t seed) {
  Rng rng(seed);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 500;
  config.payload_fields = 1;
  config.payload_bytes = 16;
  return GenerateTable(config, &rng);
}

TEST(LiveFacadeTest, LeasedLifecycleThroughTheService) {
  ServiceConfig config;
  config.live.enabled = true;
  config.live.default_ttl_ms = 0;
  SubscriptionService service(LiveWorldTable(1), Rect(0, 0, 100, 100),
                              config);
  const ClientId c1 = service.AddClient();
  const ClientId c2 = service.AddClient();

  Result<QueryId> q1 = service.SubscribeLeased(c1, Rect(0, 0, 10, 10));
  Result<QueryId> q2 = service.SubscribeLeased(c2, Rect(2, 2, 12, 12));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());

  // Live mode owns the plan: the one-shot Plan() entry point refuses.
  EXPECT_EQ(service.Plan().status().code(),
            StatusCode::kFailedPrecondition);

  BatchReport report = service.DrainAdmissions();
  EXPECT_EQ(report.admitted, 2u);
  EXPECT_EQ(service.live_stats().active, 2u);

  // The maintained plan serves rounds end to end (the simulator checks
  // every client's answers against its subscriptions).
  EXPECT_TRUE(service.RunRound().ok());

  ASSERT_TRUE(service.Unsubscribe(q1.value()).ok());
  report = service.DrainAdmissions();
  ASSERT_EQ(report.retired.size(), 1u);
  EXPECT_EQ(service.live_stats().active, 1u);
  EXPECT_TRUE(service.RunRound().ok());

  // The maintained plan covers exactly the surviving lease.
  ASSERT_NE(service.live(), nullptr);
  EXPECT_EQ(service.live()->LiveIds(), std::vector<QueryId>{q2.value()});
}

TEST(LiveFacadeTest, BackgroundTickMirrorsPlacementsIntoClientSet) {
  // Regression: with the background sweep-and-drain tick on, batches
  // used to be processed inside LivePlanManager without the facade's
  // ApplyBatch — placed and retired subscriptions were never mirrored
  // into the ClientSet, so rounds served a plan whose clients the
  // service did not know about. The batch callback closes the gap.
  // Real clock on purpose: the tick sleeps in real time.
  ServiceConfig config;
  config.live.enabled = true;
  config.live.sweep_interval_ms = 1;
  SubscriptionService service(LiveWorldTable(7), Rect(0, 0, 100, 100),
                              config);
  const ClientId client = service.AddClient();
  Result<QueryId> id = service.SubscribeLeased(client, Rect(5, 5, 25, 25));
  ASSERT_TRUE(id.ok());

  // No explicit ProcessAdmissions/DrainAdmissions: the ticker must both
  // plan the admission and mirror it (MirroredQueriesOf synchronizes
  // with the ticker-thread mirroring).
  std::vector<QueryId> mirrored;
  for (int i = 0; i < 5000 && mirrored.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    mirrored = service.MirroredQueriesOf(client);
  }
  ASSERT_EQ(mirrored, std::vector<QueryId>{id.value()})
      << "background-tick placement was not mirrored into the ClientSet";
  EXPECT_EQ(service.live_stats().active, 1u);
  // The installed plan serves rounds end to end (the simulator verifies
  // every client's deliveries against its ClientSet subscriptions).
  EXPECT_TRUE(service.RunRound().ok());

  // Retirement flows through the same path.
  ASSERT_TRUE(service.Unsubscribe(id.value()).ok());
  for (int i = 0; i < 5000 && !mirrored.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    mirrored = service.MirroredQueriesOf(client);
  }
  EXPECT_TRUE(mirrored.empty())
      << "background-tick retirement was not mirrored out of the ClientSet";
  EXPECT_EQ(service.live_stats().active, 0u);
}

TEST(LiveFacadeTest, LiveModeRequiresSingleChannel) {
  ServiceConfig config;
  config.live.enabled = true;
  config.num_channels = 4;
  SubscriptionService service(LiveWorldTable(2), Rect(0, 0, 100, 100),
                              config);
  const ClientId client = service.AddClient();
  EXPECT_FALSE(service.SubscribeLeased(client, Rect(0, 0, 1, 1)).ok());
}

TEST(LiveFacadeTest, LiveCallsRejectedWhenDisabled) {
  SubscriptionService service(LiveWorldTable(3), Rect(0, 0, 100, 100),
                              ServiceConfig{});
  const ClientId client = service.AddClient();
  EXPECT_EQ(service.SubscribeLeased(client, Rect(0, 0, 1, 1)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Unsubscribe(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.SweepExpired(), 0u);
}

// ---------------------------------------------------------------------
// Churn soak determinism and invariants.

ChurnConfig SmallChurn(uint64_t seed) {
  ChurnConfig config;
  config.rounds = 12;
  config.initial_subs = 60;
  config.arrivals_per_round = 6;
  config.departures_per_round = 3;
  config.fault.crash_rate = 0.1;
  config.fault.late_join_rate = 0.4;
  config.seed = seed;
  return config;
}

TEST(ChurnSoakTest, FixedSeedRunsAreByteDeterministic) {
  Result<ChurnOutcome> first = RunServiceChurn(SmallChurn(5));
  Result<ChurnOutcome> second = RunServiceChurn(SmallChurn(5));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->invariants_ok()) << first->invariant_error;
  EXPECT_EQ(first->digest, second->digest);
  ASSERT_EQ(first->rounds.size(), second->rounds.size());
  for (size_t i = 0; i < first->rounds.size(); ++i) {
    EXPECT_EQ(first->rounds[i].cost, second->rounds[i].cost) << "round " << i;
    EXPECT_EQ(first->rounds[i].evaluations, second->rounds[i].evaluations);
  }
}

TEST(ChurnSoakTest, DifferentSeedsDiverge) {
  Result<ChurnOutcome> a = RunServiceChurn(SmallChurn(5));
  Result<ChurnOutcome> b = RunServiceChurn(SmallChurn(6));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->digest, b->digest);
}

TEST(ChurnSoakTest, InvariantsHoldAcrossMaintenancePolicies) {
  for (const int moves : {-1, 0, 8}) {
    ChurnConfig config = SmallChurn(7);
    config.service.repair_max_moves = moves;
    config.service.replan_drift_factor = 1.2;
    config.service.drift_check_every_batches = 2;
    Result<ChurnOutcome> outcome = RunServiceChurn(config);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->invariants_ok())
        << "repair_max_moves=" << moves << ": " << outcome->invariant_error;
    EXPECT_GT(outcome->final_stats.expired, 0u);
  }
}

TEST(ChurnSoakTest, TickingClockSoakStaysDeterministic) {
  // Nonzero tick = every clock read advances time (in-batch deadlines
  // can fire); the digest must still be reproducible.
  ChurnConfig config = SmallChurn(9);
  config.clock_tick_us = 1.0;
  config.service.repair_deadline_us = 200;
  Result<ChurnOutcome> a = RunServiceChurn(config);
  Result<ChurnOutcome> b = RunServiceChurn(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->invariants_ok()) << a->invariant_error;
  EXPECT_EQ(a->digest, b->digest);
}

}  // namespace
}  // namespace qsp
