#include <gtest/gtest.h>

#include <vector>

#include "cost/cost_model.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/query.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// The 3-query arrangement of Figure 6, scaled by the unit size S = 1:
/// q1 (top bar) and q2 (right bar) have size 2, q3 (corner square) size 1;
/// every merge — any pair or all three — has bounding-rectangle size 4.
QuerySet FigureSixQueries() {
  return QuerySet({Rect(0, 1, 2, 2),    // q1, area 2
                   Rect(1, 0, 2, 2),    // q2, area 2
                   Rect(0, 0, 1, 1)});  // q3, area 1
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : queries_(FigureSixQueries()),
        estimator_(1.0),
        ctx_(&queries_, &estimator_, &procedure_) {}

  QuerySet queries_;
  UniformDensityEstimator estimator_;
  BoundingRectProcedure procedure_;
  MergeContext ctx_;
};

TEST_F(CostModelTest, FigureSixGeometryHasPaperSizes) {
  EXPECT_DOUBLE_EQ(ctx_.Size(0), 2.0);
  EXPECT_DOUBLE_EQ(ctx_.Size(1), 2.0);
  EXPECT_DOUBLE_EQ(ctx_.Size(2), 1.0);
  EXPECT_DOUBLE_EQ(ctx_.Stats({0, 1}).size, 4.0);
  EXPECT_DOUBLE_EQ(ctx_.Stats({0, 2}).size, 4.0);
  EXPECT_DOUBLE_EQ(ctx_.Stats({1, 2}).size, 4.0);
  EXPECT_DOUBLE_EQ(ctx_.Stats({0, 1, 2}).size, 4.0);
}

TEST_F(CostModelTest, AppendixOneCosts) {
  // The paper's example constants: S=1, K_M=10, K_T=9, K_U=4.
  const CostModel model{10, 9, 4, 0};
  // Not merging: 3*K_M + 5*K_T*S = 75.
  EXPECT_DOUBLE_EQ(model.PartitionCost(ctx_, SingletonPartition(3)), 75.0);
  // Merging q1,q2: 2*K_M + 5*K_T*S + 4*K_U*S = 81.
  EXPECT_DOUBLE_EQ(model.PartitionCost(ctx_, {{0, 1}, {2}}), 81.0);
  // Merging all: K_M + 4*K_T*S + 7*K_U*S = 74.
  EXPECT_DOUBLE_EQ(model.PartitionCost(ctx_, {{0, 1, 2}}), 74.0);
}

TEST_F(CostModelTest, MergingAllIsOptimalButNoPairIs) {
  // Section 5.1's headline example: local (pairwise) decisions say
  // "don't merge", yet the global optimum merges everything.
  const CostModel model{10, 9, 4, 0};
  const double none = model.PartitionCost(ctx_, SingletonPartition(3));
  const double all = model.PartitionCost(ctx_, {{0, 1, 2}});
  EXPECT_LT(all, none);
  EXPECT_LE(model.MergeBenefit(ctx_, {0}, {1}), 0.0);
  EXPECT_LE(model.MergeBenefit(ctx_, {0}, {2}), 0.0);
  EXPECT_LE(model.MergeBenefit(ctx_, {1}, {2}), 0.0);
}

TEST_F(CostModelTest, SatisfiabilityConditionsOfEquationOne) {
  // S > K_M / (4 K_U) with the paper's constants: 1 > 10/16? No — the
  // paper's appendix derives the conditions from its own (slightly
  // inconsistent) cost lines; what must actually hold for our geometry is
  // just the ordering asserted above. Verify the two orderings implied by
  // equations (1) that are consistent with the geometry:
  const CostModel model{10, 9, 4, 0};
  const double none = model.PartitionCost(ctx_, SingletonPartition(3));
  const double pair12 = model.PartitionCost(ctx_, {{0, 1}, {2}});
  const double all = model.PartitionCost(ctx_, {{0, 1, 2}});
  EXPECT_LT(none, pair12);  // No pair merge is beneficial.
  EXPECT_LT(all, none);     // Merging all is.
}

TEST(CostModelBasicsTest, FromComponentsDerivation) {
  // K_M = k1 + k6*num_clients + k4, K_T = k2 + k3, K_U = k5.
  const CostModel model = CostModel::FromComponents(1, 2, 3, 4, 5, 6, 10);
  EXPECT_DOUBLE_EQ(model.k_m, 1 + 6 * 10 + 4);
  EXPECT_DOUBLE_EQ(model.k_t, 5.0);
  EXPECT_DOUBLE_EQ(model.k_u, 5.0);
  EXPECT_DOUBLE_EQ(model.k_d, 0.0);
}

TEST(CostModelBasicsTest, TwoQueryDecisionRule) {
  const CostModel model{1, 1, 1, 0};
  // Identical queries (s3 == s1 == s2): always merge (saves K_M).
  EXPECT_TRUE(model.TwoQueryMergeBeneficial(5, 5, 5));
  // Disjoint far queries: merged size dominates.
  EXPECT_FALSE(model.TwoQueryMergeBeneficial(1, 1, 100));
  // Boundary: K_M + K_T*(s1+s2-s3) + K_U*(s1+s2-2*s3) == 0 is "don't".
  // s1=s2=2, s3=3: 1 + 1*1 + 1*(-2) = 0.
  EXPECT_FALSE(model.TwoQueryMergeBeneficial(2, 2, 3));
  // Slightly smaller s3 flips it.
  EXPECT_TRUE(model.TwoQueryMergeBeneficial(2, 2, 2.9));
}

TEST(CostModelBasicsTest, KTZeroKUZeroMergesEverything) {
  // Section 5.2: with K_T = K_U = 0 the problem is trivial — merge all.
  QuerySet qs({Rect(0, 0, 1, 1), Rect(50, 50, 51, 51), Rect(90, 0, 91, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{1, 0, 0, 0};
  EXPECT_LT(model.PartitionCost(ctx, OneGroupPartition(3)),
            model.PartitionCost(ctx, SingletonPartition(3)));
  EXPECT_GT(model.MergeBenefit(ctx, {0}, {1}), 0.0);
}

TEST(CostModelBasicsTest, InitialCostIsSingletonCost) {
  QuerySet qs({Rect(0, 0, 2, 2), Rect(5, 5, 6, 6)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{3, 2, 7, 0};
  EXPECT_DOUBLE_EQ(model.InitialCost(ctx),
                   model.PartitionCost(ctx, SingletonPartition(2)));
  // = 2*K_M + K_T*(4+1).
  EXPECT_DOUBLE_EQ(model.InitialCost(ctx), 6 + 2 * 5);
}

TEST(CostModelBasicsTest, CoMergeBenefitBound) {
  const CostModel model{10, 1, 2, 0};
  // Identical queries (r == s1 == s2): bound = K_M + K_T*s > 0.
  EXPECT_GT(model.CoMergeBenefitBound(4, 4, 4), 0.0);
  // Far queries: r >> s1+s2 makes the bound negative.
  EXPECT_LT(model.CoMergeBenefitBound(1, 1, 100), 0.0);
}

/// Property: the Section 6.2.1 benefit formula (implemented as group-cost
/// differences) must equal the partition-cost difference obtained by
/// actually performing the merge, for random geometry and constants.
class BenefitConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BenefitConsistency, BenefitEqualsCostDelta) {
  Rng rng(GetParam());
  QueryGenConfig config;
  config.num_queries = 8;
  QuerySet qs(GenerateQueries(config, &rng));
  UniformDensityEstimator est(0.01);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{rng.UniformDouble(0.1, 20),
                        rng.UniformDouble(0.1, 5),
                        rng.UniformDouble(0.1, 5), 0};

  // Random partition of the 8 queries into 3 groups.
  Partition partition(3);
  for (QueryId q = 0; q < 8; ++q) {
    partition[static_cast<size_t>(rng.UniformInt(0, 2))].push_back(q);
  }
  CanonicalizePartition(&partition);
  if (partition.size() < 2) GTEST_SKIP();

  const double before = model.PartitionCost(ctx, partition);
  const double benefit = model.MergeBenefit(ctx, partition[0], partition[1]);
  Partition merged = partition;
  merged[0] = UnionGroups(partition[0], partition[1]);
  merged.erase(merged.begin() + 1);
  const double after = model.PartitionCost(ctx, merged);
  EXPECT_NEAR(before - after, benefit, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenefitConsistency,
                         ::testing::Range<uint64_t>(1000, 1012));

/// Property: the closed-form pair-merging benefit of Section 6.2.1
/// (K_M + K_T(Ra+Rb-Rm) + K_U(p*Ra + r*Rb - (p+r)*Rm)) matches
/// MergeBenefit for bounding-rect merging, where Ra/Rb/Rm are merged
/// sizes and p/r the group arities.
class ClosedFormBenefit : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosedFormBenefit, MatchesPaperFormula) {
  Rng rng(GetParam());
  QueryGenConfig config;
  config.num_queries = 6;
  QuerySet qs(GenerateQueries(config, &rng));
  UniformDensityEstimator est(0.01);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{5, 2, 3, 0};

  const QueryGroup a = {0, 1, 2};
  const QueryGroup b = {3, 4};
  const double ra = ctx.Stats(a).size;
  const double rb = ctx.Stats(b).size;
  const double rm = ctx.Stats(UnionGroups(a, b)).size;
  double sa = 0, sb = 0;
  for (QueryId q : a) sa += ctx.Size(q);
  for (QueryId q : b) sb += ctx.Size(q);
  const double p = static_cast<double>(a.size());
  const double r = static_cast<double>(b.size());

  // Cost_old - Cost_new from the paper's derivation. Note the formula's
  // S_a/S_b terms cancel; they are retained in the intermediate
  // expressions only.
  const double closed_form =
      model.k_m + model.k_t * (ra + rb - rm) +
      model.k_u * (p * ra + r * rb - (p + r) * rm);
  EXPECT_NEAR(model.MergeBenefit(ctx, a, b), closed_form, 1e-9)
      << "sa=" << sa << " sb=" << sb;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormBenefit,
                         ::testing::Range<uint64_t>(2000, 2010));

}  // namespace
}  // namespace qsp
