#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/equi_depth_estimator.h"
#include "stats/exact_estimator.h"
#include "stats/sampling_estimator.h"
#include "stats/histogram_estimator.h"
#include "stats/size_estimator.h"
#include "util/rng.h"

namespace qsp {
namespace {

// ------------------------------------------------- UniformDensityEstimator

TEST(UniformEstimatorTest, SizeIsDensityTimesArea) {
  UniformDensityEstimator est(2.0);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect(0, 0, 3, 4)), 24.0);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect::Empty()), 0.0);
}

TEST(UniformEstimatorTest, DensityFromObjectCount) {
  UniformDensityEstimator est(1000.0, Rect(0, 0, 100, 100));
  EXPECT_DOUBLE_EQ(est.density(), 0.1);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect(0, 0, 10, 10)), 10.0);
}

TEST(UniformEstimatorTest, RecordSizeScales) {
  UniformDensityEstimator est(1000.0, Rect(0, 0, 100, 100), 50.0);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect(0, 0, 10, 10)), 500.0);
}

TEST(UniformEstimatorTest, RegionSizeSumsDisjointPieces) {
  UniformDensityEstimator est(1.0);
  const std::vector<Rect> pieces = {Rect(0, 0, 1, 1), Rect(2, 0, 3, 2)};
  EXPECT_DOUBLE_EQ(est.EstimateRegionSize(pieces), 1.0 + 2.0);
}

// ----------------------------------------------------- HistogramEstimator

TEST(HistogramEstimatorTest, FullDomainQueryCountsEverything) {
  Rng rng(1);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 1000;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  HistogramEstimator est(table, config.domain, 10, 10);
  EXPECT_NEAR(est.EstimateSize(config.domain), 1000.0, 1e-9);
}

TEST(HistogramEstimatorTest, BucketAlignedQueryIsExact) {
  Table table(Schema::Geographic(0));
  // 4 points, one per quadrant of a 2x2 histogram over [0,10]^2.
  ASSERT_TRUE(table.Insert({2.0, 2.0}).ok());
  ASSERT_TRUE(table.Insert({7.0, 2.0}).ok());
  ASSERT_TRUE(table.Insert({2.0, 7.0}).ok());
  ASSERT_TRUE(table.Insert({7.0, 7.0}).ok());
  HistogramEstimator est(table, Rect(0, 0, 10, 10), 2, 2);
  EXPECT_NEAR(est.EstimateSize(Rect(0, 0, 5, 5)), 1.0, 1e-9);
  EXPECT_NEAR(est.EstimateSize(Rect(5, 0, 10, 10)), 2.0, 1e-9);
}

TEST(HistogramEstimatorTest, FractionalOverlapInterpolates) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({5.0, 5.0}).ok());
  HistogramEstimator est(table, Rect(0, 0, 10, 10), 1, 1);
  // Query covers half the single bucket -> estimate 0.5 tuples.
  EXPECT_NEAR(est.EstimateSize(Rect(0, 0, 5, 10)), 0.5, 1e-9);
}

TEST(HistogramEstimatorTest, QueryOutsideDomainIsZero) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({5.0, 5.0}).ok());
  HistogramEstimator est(table, Rect(0, 0, 10, 10), 4, 4);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect(20, 20, 30, 30)), 0.0);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect::Empty()), 0.0);
}

TEST(HistogramEstimatorTest, RecordSizeScales) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({5.0, 5.0}).ok());
  HistogramEstimator est(table, Rect(0, 0, 10, 10), 1, 1, 32.0);
  EXPECT_NEAR(est.EstimateSize(Rect(0, 0, 10, 10)), 32.0, 1e-9);
}

/// Property: on uniform data, fine histograms approach the exact count;
/// on clustered data, the histogram beats the uniform estimator.
class HistogramAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracy, BeatsUniformOnClusteredData) {
  Rng rng(GetParam());
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 5000;
  config.clustered_fraction = 0.9;
  config.num_clusters = 4;
  config.cluster_spread = 0.02;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  GridIndex index(table, config.domain);
  ExactEstimator exact(&index);
  HistogramEstimator hist(table, config.domain, 32, 32);
  UniformDensityEstimator uniform(5000.0, config.domain);

  double hist_err = 0, uniform_err = 0;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.UniformDouble(0, 80);
    const double y = rng.UniformDouble(0, 80);
    const Rect q(x, y, x + rng.UniformDouble(5, 20),
                 y + rng.UniformDouble(5, 20));
    const double truth = exact.EstimateSize(q);
    hist_err += std::abs(hist.EstimateSize(q) - truth);
    uniform_err += std::abs(uniform.EstimateSize(q) - truth);
  }
  EXPECT_LT(hist_err, uniform_err);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy,
                         ::testing::Values(21, 42, 63));

// ----------------------------------------------------- EquiDepthEstimator

TEST(EquiDepthEstimatorTest, FullDomainCountsEverything) {
  Rng rng(3);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 2000;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  EquiDepthEstimator est(table, 16);
  EXPECT_NEAR(est.EstimateSize(Rect(-10, -10, 110, 110)), 2000.0, 1.0);
}

TEST(EquiDepthEstimatorTest, EmptyTableAndEmptyQuery) {
  Table table(Schema::Geographic(0));
  EquiDepthEstimator est(table, 8);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect(0, 0, 10, 10)), 0.0);
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  EquiDepthEstimator est2(table, 8);
  EXPECT_DOUBLE_EQ(est2.EstimateSize(Rect::Empty()), 0.0);
}

TEST(EquiDepthEstimatorTest, HalfSplitOnUniformAxis) {
  // Uniform x in [0,100]: the marginal fraction of [0,50] must be ~0.5.
  Table table(Schema::Geographic(0));
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        table.Insert({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)})
            .ok());
  }
  EquiDepthEstimator est(table, 32);
  EXPECT_NEAR(est.EstimateSize(Rect(0, 0, 50, 100)), 2000.0, 120.0);
}

TEST(EquiDepthEstimatorTest, AdaptsToSkewOnOneAxis) {
  // 90% of mass at x in [0,10]: an equi-depth marginal resolves the
  // dense region far better than uniform-density would.
  Table table(Schema::Geographic(0));
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Bernoulli(0.9) ? rng.UniformDouble(0, 10)
                                        : rng.UniformDouble(10, 100);
    ASSERT_TRUE(table.Insert({x, rng.UniformDouble(0, 100)}).ok());
  }
  EquiDepthEstimator est(table, 32);
  UniformDensityEstimator uniform(5000.0, Rect(0, 0, 100, 100));
  const Rect dense(0, 0, 10, 100);
  const double truth = static_cast<double>(table.CountRange(dense));
  EXPECT_LT(std::abs(est.EstimateSize(dense) - truth),
            std::abs(uniform.EstimateSize(dense) - truth));
  EXPECT_NEAR(est.EstimateSize(dense), truth, 0.05 * truth);
}

// MarginalFraction edge cases, directly on the static helper: empty
// table (no boundaries), a single bucket, ranges outside the data
// domain, and duplicate boundary values from repeated data.

TEST(EquiDepthMarginalTest, EmptyBoundariesMeanNoData) {
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction({}, 0.0, 10.0), 0.0);
}

TEST(EquiDepthMarginalTest, InvertedRangeIsZero) {
  EXPECT_DOUBLE_EQ(
      EquiDepthEstimator::MarginalFraction({0.0, 10.0}, 7.0, 3.0), 0.0);
}

TEST(EquiDepthMarginalTest, SingleBucketInterpolatesLinearly) {
  const std::vector<double> b = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 0.0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 2.5, 7.5), 0.5);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 9.0, 10.0), 0.1);
}

TEST(EquiDepthMarginalTest, RangesOutsideDomainClampToZeroOrOne) {
  const std::vector<double> b = {0.0, 10.0};
  // Entirely below / above the data: nothing there.
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, -5.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 11.0, 20.0), 0.0);
  // Straddling an edge clamps to the domain.
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, -5.0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 5.0, 20.0), 0.5);
  // Covering everything is everything.
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, -100.0, 100.0),
                   1.0);
}

TEST(EquiDepthMarginalTest, DuplicateBoundariesCarryPointMass) {
  // Heavily repeated value 5 collapses the middle bucket to zero width:
  // a third of the mass sits exactly at 5 and must be attributed to the
  // ranges ending there, not double counted or lost.
  const std::vector<double> b = {0.0, 5.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 0.0, 5.0),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(b, 5.0, 10.0),
                   1.0 / 3.0);
  // All mass at one value: only ranges strictly spanning it see it.
  const std::vector<double> point = {7.0, 7.0};
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(point, 6.0, 8.0),
                   1.0);
  EXPECT_DOUBLE_EQ(EquiDepthEstimator::MarginalFraction(point, 7.0, 7.0),
                   0.0);
}

TEST(EquiDepthMarginalTest, FractionsStayInUnitIntervalAndMonotone) {
  // Random boundary vectors (with duplicates) and random ranges: the
  // fraction is always in [0, 1] and monotone in the range endpoints.
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> b;
    const int buckets = static_cast<int>(rng.UniformInt(1, 8));
    double v = rng.UniformDouble(-10, 10);
    for (int i = 0; i <= buckets; ++i) {
      b.push_back(v);
      if (!rng.Bernoulli(0.3)) v += rng.UniformDouble(0, 5);
    }
    const double lo = rng.UniformDouble(-15, 15);
    const double hi = lo + rng.UniformDouble(0, 15);
    const double f = EquiDepthEstimator::MarginalFraction(b, lo, hi);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    const double wider =
        EquiDepthEstimator::MarginalFraction(b, lo - 1.0, hi + 1.0);
    EXPECT_LE(f, wider + 1e-12);
  }
}

// ------------------------------------------------------ SamplingEstimator

TEST(SamplingEstimatorTest, FullRateIsExact) {
  Rng rng(6);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 500;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  SamplingEstimator est(table, 1.0);
  EXPECT_EQ(est.sample_size(), 500u);
  const Rect q(20, 20, 70, 70);
  EXPECT_DOUBLE_EQ(est.EstimateSize(q),
                   static_cast<double>(table.CountRange(q)));
}

TEST(SamplingEstimatorTest, UnbiasedWithinTolerance) {
  Rng rng(7);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 20000;
  config.clustered_fraction = 0.5;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  const Rect q(10, 10, 60, 60);
  const double truth = static_cast<double>(table.CountRange(q));
  // Average across seeds to damp sampling noise.
  double total = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SamplingEstimator est(table, 0.05, seed);
    total += est.EstimateSize(q);
  }
  EXPECT_NEAR(total / 10.0, truth, 0.1 * truth);
}

TEST(SamplingEstimatorTest, DeterministicInSeed) {
  Rng rng(8);
  TableGeneratorConfig config;
  config.num_objects = 1000;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  SamplingEstimator a(table, 0.1, 99), b(table, 0.1, 99);
  EXPECT_EQ(a.sample_size(), b.sample_size());
  EXPECT_DOUBLE_EQ(a.EstimateSize(Rect(0, 0, 500, 500)),
                   b.EstimateSize(Rect(0, 0, 500, 500)));
}

// --------------------------------------------------------- ExactEstimator

TEST(ExactEstimatorTest, MatchesIndexCount) {
  Rng rng(2);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 50, 50);
  config.num_objects = 300;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  GridIndex index(table, config.domain);
  ExactEstimator est(&index);
  const Rect q(10, 10, 30, 40);
  EXPECT_DOUBLE_EQ(est.EstimateSize(q),
                   static_cast<double>(table.CountRange(q)));
}

TEST(ExactEstimatorTest, RecordSizeScales) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  ASSERT_TRUE(table.Insert({2.0, 2.0}).ok());
  GridIndex index(table, Rect(0, 0, 10, 10));
  ExactEstimator est(&index, 10.0);
  EXPECT_DOUBLE_EQ(est.EstimateSize(Rect(0, 0, 10, 10)), 20.0);
}

}  // namespace
}  // namespace qsp
