#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "geom/hull.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/region.h"
#include "util/rng.h"

namespace qsp {
namespace {

// ------------------------------------------------------------------ Rect

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Width(), 0.0);
  EXPECT_EQ(r.Height(), 0.0);
}

TEST(RectTest, BasicGeometry) {
  Rect r(1, 2, 4, 6);
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 4.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_EQ(r.Center().x, 2.5);
  EXPECT_EQ(r.Center().y, 4.0);
}

TEST(RectTest, FromCornersNormalizes) {
  Rect r = Rect::FromCorners({4, 6}, {1, 2});
  EXPECT_EQ(r, Rect(1, 2, 4, 6));
}

TEST(RectTest, FromCenter) {
  Rect r = Rect::FromCenter({5, 5}, 2, 4);
  EXPECT_EQ(r, Rect(4, 3, 6, 7));
}

TEST(RectTest, ContainsPointClosedBounds) {
  Rect r(0, 0, 10, 10);
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(r.Contains(Point{10, 10}));
  EXPECT_TRUE(r.Contains(Point{5, 5}));
  EXPECT_FALSE(r.Contains(Point{10.0001, 5}));
  EXPECT_FALSE(r.Contains(Point{-0.0001, 5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rect(2, 2, 8, 8)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(2, 2, 11, 8)));
  EXPECT_TRUE(outer.Contains(Rect::Empty()));
  EXPECT_FALSE(Rect::Empty().Contains(outer));
}

TEST(RectTest, IntersectsAndIntersection) {
  Rect a(0, 0, 5, 5);
  Rect b(3, 3, 8, 8);
  Rect c(6, 6, 9, 9);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.Intersection(b), Rect(3, 3, 5, 5));
  EXPECT_TRUE(a.Intersection(c).IsEmpty());
}

TEST(RectTest, TouchingRectsIntersectOnBoundary) {
  Rect a(0, 0, 5, 5);
  Rect b(5, 0, 10, 5);
  EXPECT_TRUE(a.Intersects(b));  // Closed rects share the x=5 edge.
  EXPECT_EQ(a.Intersection(b).Area(), 0.0);
}

TEST(RectTest, BoundingUnion) {
  Rect a(0, 0, 2, 2);
  Rect b(5, 5, 6, 8);
  EXPECT_EQ(a.BoundingUnion(b), Rect(0, 0, 6, 8));
  EXPECT_EQ(a.BoundingUnion(Rect::Empty()), a);
  EXPECT_EQ(Rect::Empty().BoundingUnion(b), b);
}

TEST(RectTest, OverlapArea) {
  EXPECT_DOUBLE_EQ(OverlapArea(Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)), 4.0);
  EXPECT_DOUBLE_EQ(OverlapArea(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)), 0.0);
}

TEST(RectTest, EmptyRectsCompareEqual) {
  EXPECT_EQ(Rect::Empty(), Rect(3, 3, 2, 2));
}

TEST(RectTest, ToStringRenders) {
  EXPECT_EQ(Rect::Empty().ToString(), "[empty]");
  EXPECT_EQ(Rect(1, 2, 3, 4).ToString(), "[1,2..3,4]");
}

// ---------------------------------------------------------------- Region

TEST(RegionTest, EmptyRegion) {
  RectilinearRegion region;
  EXPECT_TRUE(region.IsEmpty());
  EXPECT_EQ(region.Area(), 0.0);
  EXPECT_TRUE(region.BoundingBox().IsEmpty());
}

TEST(RegionTest, SingleRect) {
  auto region = RectilinearRegion::UnionOf({Rect(0, 0, 4, 3)});
  EXPECT_DOUBLE_EQ(region.Area(), 12.0);
  EXPECT_EQ(region.pieces().size(), 1u);
}

TEST(RegionTest, DisjointRects) {
  auto region =
      RectilinearRegion::UnionOf({Rect(0, 0, 1, 1), Rect(5, 5, 7, 6)});
  EXPECT_DOUBLE_EQ(region.Area(), 3.0);
}

TEST(RegionTest, OverlapCountedOnce) {
  auto region =
      RectilinearRegion::UnionOf({Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)});
  EXPECT_DOUBLE_EQ(region.Area(), 16 + 16 - 4);
}

TEST(RegionTest, NestedRect) {
  auto region =
      RectilinearRegion::UnionOf({Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)});
  EXPECT_DOUBLE_EQ(region.Area(), 100.0);
}

TEST(RegionTest, IdenticalRects) {
  auto region =
      RectilinearRegion::UnionOf({Rect(1, 1, 3, 3), Rect(1, 1, 3, 3)});
  EXPECT_DOUBLE_EQ(region.Area(), 4.0);
}

TEST(RegionTest, PiecesAreInteriorDisjoint) {
  auto region = RectilinearRegion::UnionOf(
      {Rect(0, 0, 4, 4), Rect(2, 2, 6, 6), Rect(3, -1, 5, 1)});
  const auto& pieces = region.pieces();
  for (size_t i = 0; i < pieces.size(); ++i) {
    for (size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_DOUBLE_EQ(OverlapArea(pieces[i], pieces[j]), 0.0)
          << pieces[i].ToString() << " vs " << pieces[j].ToString();
    }
  }
}

TEST(RegionTest, ContainsPoint) {
  auto region =
      RectilinearRegion::UnionOf({Rect(0, 0, 2, 2), Rect(4, 4, 6, 6)});
  EXPECT_TRUE(region.Contains(Point{1, 1}));
  EXPECT_TRUE(region.Contains(Point{5, 5}));
  EXPECT_FALSE(region.Contains(Point{3, 3}));
}

TEST(RegionTest, CoversInputRects) {
  const std::vector<Rect> rects = {Rect(0, 0, 4, 4), Rect(2, 2, 6, 6),
                                   Rect(5, 0, 7, 3)};
  auto region = RectilinearRegion::UnionOf(rects);
  for (const Rect& r : rects) EXPECT_TRUE(region.Covers(r));
  EXPECT_FALSE(region.Covers(Rect(-1, -1, 1, 1)));
}

TEST(RegionTest, IntersectionOfRegions) {
  auto a = RectilinearRegion::UnionOf({Rect(0, 0, 4, 4)});
  auto b = RectilinearRegion::UnionOf({Rect(2, 2, 6, 6), Rect(0, 3, 1, 5)});
  auto c = a.IntersectWith(b);
  EXPECT_DOUBLE_EQ(c.Area(), 4.0 + 1.0);
}

TEST(RegionTest, IntersectionOfDisjointRegionsIsEmpty) {
  // Far-apart regions short-circuit on the bounding-box precheck; the
  // result must still be exactly empty.
  auto a = RectilinearRegion::UnionOf({Rect(0, 0, 4, 4), Rect(2, 3, 5, 6)});
  auto b = RectilinearRegion::UnionOf(
      {Rect(100, 100, 104, 104), Rect(102, 103, 105, 106)});
  EXPECT_TRUE(a.IntersectWith(b).IsEmpty());
  EXPECT_TRUE(b.IntersectWith(a).IsEmpty());
  EXPECT_TRUE(a.IntersectWith(RectilinearRegion()).IsEmpty());
  EXPECT_TRUE(RectilinearRegion().IntersectWith(a).IsEmpty());
}

TEST(RegionTest, IntersectionWithFarAndNearPieces) {
  // Overlapping bounding boxes, but only one piece of each region
  // actually meets: the per-piece bbox skip must not drop the real
  // overlap.
  auto a = RectilinearRegion::UnionOf({Rect(0, 0, 4, 4), Rect(50, 50, 54, 54)});
  auto b = RectilinearRegion::UnionOf({Rect(2, 2, 6, 6), Rect(90, 0, 94, 4)});
  auto c = a.IntersectWith(b);
  EXPECT_DOUBLE_EQ(c.Area(), 4.0);
  EXPECT_TRUE(c.Covers(Rect(2, 2, 4, 4)));
}

TEST(RegionTest, IntersectionTouchingBoundingBoxesHasZeroArea) {
  // Boxes that only share an edge pass the precheck but intersect in a
  // zero-area sliver, which decomposes to nothing.
  auto a = RectilinearRegion::UnionOf({Rect(0, 0, 4, 4)});
  auto b = RectilinearRegion::UnionOf({Rect(4, 0, 8, 4)});
  EXPECT_DOUBLE_EQ(a.IntersectWith(b).Area(), 0.0);
}

TEST(RegionTest, OverlapAreaWithRect) {
  auto region =
      RectilinearRegion::UnionOf({Rect(0, 0, 2, 2), Rect(4, 0, 6, 2)});
  EXPECT_DOUBLE_EQ(region.OverlapArea(Rect(1, 0, 5, 2)), 2.0 + 2.0);
}

TEST(RegionTest, BoundingBox) {
  auto region =
      RectilinearRegion::UnionOf({Rect(0, 0, 1, 1), Rect(5, 5, 7, 6)});
  EXPECT_EQ(region.BoundingBox(), Rect(0, 0, 7, 6));
}

TEST(RegionTest, IgnoresEmptyInputs) {
  auto region = RectilinearRegion::UnionOf(
      {Rect::Empty(), Rect(0, 0, 1, 1), Rect::Empty()});
  EXPECT_DOUBLE_EQ(region.Area(), 1.0);
}

// ----------------------------------------------- Region degenerate inputs

TEST(RegionDegenerateTest, ZeroWidthRectContributesNothing) {
  // A vertical line segment has zero area and must produce no pieces,
  // alone or mixed with a real rect.
  auto alone = RectilinearRegion::UnionOf({Rect(2, 0, 2, 5)});
  EXPECT_TRUE(alone.IsEmpty());
  EXPECT_EQ(alone.Area(), 0.0);

  auto mixed = RectilinearRegion::UnionOf({Rect(2, 0, 2, 5), Rect(0, 0, 4, 3)});
  EXPECT_DOUBLE_EQ(mixed.Area(), 12.0);
  for (const Rect& p : mixed.pieces()) EXPECT_GT(p.Area(), 0.0);
}

TEST(RegionDegenerateTest, ZeroHeightRectContributesNothing) {
  // The horizontal-line twin: before the span filter this emitted a
  // zero-area piece whenever the segment lay outside every taller rect.
  auto alone = RectilinearRegion::UnionOf({Rect(0, 2, 5, 2)});
  EXPECT_TRUE(alone.IsEmpty());
  EXPECT_EQ(alone.Area(), 0.0);

  // Segment sticking out below a real rect: same x-slab, disjoint y-span.
  auto mixed =
      RectilinearRegion::UnionOf({Rect(0, 7, 5, 7), Rect(0, 0, 5, 3)});
  EXPECT_DOUBLE_EQ(mixed.Area(), 15.0);
  EXPECT_EQ(mixed.pieces().size(), 1u);
  for (const Rect& p : mixed.pieces()) EXPECT_GT(p.Area(), 0.0);
}

TEST(RegionDegenerateTest, PointLikeRectContributesNothing) {
  auto region = RectilinearRegion::UnionOf({Rect(3, 3, 3, 3)});
  EXPECT_TRUE(region.IsEmpty());
  auto mixed = RectilinearRegion::UnionOf({Rect(3, 3, 3, 3), Rect(0, 0, 2, 2)});
  EXPECT_DOUBLE_EQ(mixed.Area(), 4.0);
}

TEST(RegionDegenerateTest, TouchingEdgesCoalesceWithoutDoubleCount) {
  // Two rects sharing an edge: area is the plain sum, never negative, and
  // the shared boundary produces no sliver piece.
  auto side_by_side =
      RectilinearRegion::UnionOf({Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)});
  EXPECT_DOUBLE_EQ(side_by_side.Area(), 8.0);
  auto stacked = RectilinearRegion::UnionOf({Rect(0, 0, 2, 2), Rect(0, 2, 2, 4)});
  EXPECT_DOUBLE_EQ(stacked.Area(), 8.0);
  EXPECT_EQ(stacked.pieces().size(), 1u);
  // Corner touch only: no overlap to subtract.
  auto corner = RectilinearRegion::UnionOf({Rect(0, 0, 2, 2), Rect(2, 2, 4, 4)});
  EXPECT_DOUBLE_EQ(corner.Area(), 8.0);
}

TEST(RegionDegenerateTest, IntersectionBoundaryValues) {
  auto a = RectilinearRegion::UnionOf({Rect(0, 0, 4, 4)});
  // Identical regions intersect to themselves.
  auto self = a.IntersectWith(a);
  EXPECT_DOUBLE_EQ(self.Area(), 16.0);
  // Edge-touching regions share only a zero-area line: the intersection
  // must be empty (no degenerate piece), not negative.
  auto touching = RectilinearRegion::UnionOf({Rect(4, 0, 8, 4)});
  auto line = a.IntersectWith(touching);
  EXPECT_TRUE(line.IsEmpty());
  EXPECT_EQ(line.Area(), 0.0);
  // Fully disjoint regions: empty intersection.
  auto far = RectilinearRegion::UnionOf({Rect(10, 10, 12, 12)});
  EXPECT_TRUE(a.IntersectWith(far).IsEmpty());
}

TEST(RegionDegenerateTest, AreasNeverNegativeOrNaNUnderDegenerateSweep) {
  // Random mix of real, zero-width, zero-height, and point rects: every
  // derived area must be finite and non-negative, and pieces positive.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Rect> rects;
    const int n = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
      double x = rng.UniformDouble(0, 50);
      double y = rng.UniformDouble(0, 50);
      double w = rng.UniformDouble(0, 10);
      double h = rng.UniformDouble(0, 10);
      switch (rng.UniformInt(0, 3)) {
        case 0: w = 0; break;
        case 1: h = 0; break;
        case 2: w = h = 0; break;
        default: break;
      }
      rects.emplace_back(x, y, x + w, y + h);
    }
    auto region = RectilinearRegion::UnionOf(rects);
    EXPECT_TRUE(std::isfinite(region.Area()));
    EXPECT_GE(region.Area(), 0.0);
    for (const Rect& p : region.pieces()) EXPECT_GT(p.Area(), 0.0);
    auto meet = region.IntersectWith(region);
    EXPECT_TRUE(std::isfinite(meet.Area()));
    EXPECT_NEAR(meet.Area(), region.Area(), 1e-9);
  }
}

/// Property: the sweep-decomposed union area must match Monte-Carlo
/// estimation on random rectangle sets.
class RegionAreaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionAreaProperty, MatchesMonteCarlo) {
  Rng rng(GetParam());
  std::vector<Rect> rects;
  const int n = static_cast<int>(rng.UniformInt(2, 8));
  for (int i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 80);
    const double y = rng.UniformDouble(0, 80);
    rects.emplace_back(x, y, x + rng.UniformDouble(1, 20),
                       y + rng.UniformDouble(1, 20));
  }
  auto region = RectilinearRegion::UnionOf(rects);

  Rng sampler(GetParam() ^ 0xABCDEF);
  const int samples = 200000;
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    const Point p{sampler.UniformDouble(0, 100),
                  sampler.UniformDouble(0, 100)};
    bool inside = false;
    for (const Rect& r : rects) {
      if (r.Contains(p)) {
        inside = true;
        break;
      }
    }
    if (inside) ++hits;
    // Decomposition must agree with the raw rect list pointwise.
    EXPECT_EQ(inside, region.Contains(p));
  }
  const double mc_area = 100.0 * 100.0 * hits / samples;
  EXPECT_NEAR(region.Area(), mc_area, 0.05 * 100.0 * 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionAreaProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(UnionAreaTest, FreeFunctionMatchesRegion) {
  const std::vector<Rect> rects = {Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)};
  EXPECT_DOUBLE_EQ(UnionArea(rects),
                   RectilinearRegion::UnionOf(rects).Area());
}

// ------------------------------------------------------------------ Hull

TEST(HullTest, SingleRectIsItself) {
  auto hull = BoundingPolygon({Rect(1, 1, 4, 5)});
  EXPECT_DOUBLE_EQ(hull.Area(), 12.0);
  EXPECT_EQ(hull.BoundingBox(), Rect(1, 1, 4, 5));
}

TEST(HullTest, LShapeKeepsNotchOpen) {
  // Two rects forming an L: the bounding box has area 16, the union 12.
  // The orthogonal hull of an L equals the union (an L is orthogonally
  // convex... only vertically; horizontal fill adds nothing here).
  const std::vector<Rect> rects = {Rect(0, 0, 2, 4), Rect(2, 0, 4, 2)};
  auto hull = BoundingPolygon(rects);
  EXPECT_DOUBLE_EQ(hull.Area(), 12.0);
}

TEST(HullTest, DiagonalRectsGetFilledBetween) {
  // Two diagonal squares: the hull must contain both but can undercut
  // the bounding box corners.
  const std::vector<Rect> rects = {Rect(0, 0, 2, 2), Rect(4, 4, 6, 6)};
  auto hull = BoundingPolygon(rects);
  const double union_area = UnionArea(rects);
  const double bbox_area = Rect(0, 0, 6, 6).Area();
  EXPECT_GT(hull.Area(), union_area - 1e-9);
  EXPECT_LT(hull.Area(), bbox_area + 1e-9);
  for (const Rect& r : rects) EXPECT_TRUE(hull.Covers(r));
}

/// Property sweep: union ⊆ hull ⊆ bounding box on random inputs.
class HullContainmentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HullContainmentProperty, SandwichedBetweenUnionAndBox) {
  Rng rng(GetParam());
  std::vector<Rect> rects;
  const int n = static_cast<int>(rng.UniformInt(1, 7));
  Rect box = Rect::Empty();
  for (int i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 90);
    const double y = rng.UniformDouble(0, 90);
    rects.emplace_back(x, y, x + rng.UniformDouble(0.5, 15),
                       y + rng.UniformDouble(0.5, 15));
    box = box.BoundingUnion(rects.back());
  }
  auto hull = BoundingPolygon(rects);
  const double union_area = UnionArea(rects);
  EXPECT_GE(hull.Area(), union_area - 1e-9);
  EXPECT_LE(hull.Area(), box.Area() + 1e-9);
  for (const Rect& r : rects) {
    EXPECT_TRUE(hull.Covers(r)) << "hull misses " << r.ToString();
  }
  EXPECT_TRUE(box.Contains(hull.BoundingBox()));
  // The fills alone must each cover the union too.
  EXPECT_GE(VerticalFill(rects).Area(), union_area - 1e-9);
  EXPECT_GE(HorizontalFill(rects).Area(), union_area - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullContainmentProperty,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace qsp
