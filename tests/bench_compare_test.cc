// tools/bench_compare: the perf-regression gate. Pins the flattening of
// bench_report.json, which leaves gate, the threshold arithmetic, and the
// BENCH_trajectory.json append/find round trip.
#include "tools/bench_compare/compare.h"

#include <cstdio>
#include <map>
#include <string>

#include <gtest/gtest.h>

namespace qsp {
namespace benchcmp {
namespace {

JsonValue Parse(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? parsed.value() : JsonValue();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(nullptr, f) << path;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

TEST(FlattenNumbers, DottedPathsNumbersOnlyArraysSkipped) {
  const JsonValue doc = Parse(
      "{\"fig15\": {\"name\": \"fig15\","
      "  \"metrics\": {\"counters\": {\"merge.runs\": 3},"
      "                \"histograms\": {\"core.plan.latency_us\":"
      "                  {\"count\": 3, \"mean\": 120.5}}},"
      "  \"trace\": [{\"phase\": \"plan\", \"wall_us\": 9}]},"
      " \"flag\": true, \"note\": \"text\"}");
  const std::map<std::string, double> flat = FlattenNumbers(doc);
  ASSERT_EQ(3u, flat.size());
  EXPECT_DOUBLE_EQ(3.0, flat.at("fig15.metrics.counters.merge.runs"));
  EXPECT_DOUBLE_EQ(
      3.0,
      flat.at("fig15.metrics.histograms.core.plan.latency_us.count"));
  EXPECT_DOUBLE_EQ(
      120.5,
      flat.at("fig15.metrics.histograms.core.plan.latency_us.mean"));
  // Arrays (trace), booleans, and strings never become gateable leaves.
  EXPECT_EQ(0u, flat.count("fig15.trace.0.wall_us"));
  EXPECT_EQ(0u, flat.count("flag"));
}

TEST(MetricSelection, LatencyAndGatedPredicates) {
  const std::string mean =
      "fig15.metrics.histograms.core.plan.latency_us.mean";
  const std::string p99 =
      "fig15.metrics.histograms.core.plan.latency_us.p99";
  const std::string counter = "fig15.metrics.counters.merge.runs";
  EXPECT_TRUE(IsLatencyMetric(mean));
  EXPECT_TRUE(IsLatencyMetric(p99));
  EXPECT_FALSE(IsLatencyMetric(counter));
  // Only histogram means gate; tail percentiles ride along unjudged.
  EXPECT_TRUE(IsGatedMetric(mean));
  EXPECT_FALSE(IsGatedMetric(p99));
  EXPECT_FALSE(IsGatedMetric(counter));
}

TEST(Compare, FlagsOnlyRegressionsBeyondThreshold) {
  const std::string a = "a.latency_us.mean";
  const std::string b = "b.latency_us.mean";
  const std::string c = "c.latency_us.mean";
  std::map<std::string, double> baseline = {{a, 100.0}, {b, 100.0},
                                            {c, 100.0}};
  std::map<std::string, double> current = {{a, 100.0}, {b, 124.0},
                                           {c, 150.0}};
  CompareOptions options;
  options.threshold_pct = 25.0;
  const CompareResult result = Compare(baseline, current, options);
  ASSERT_EQ(3u, result.deltas.size());
  EXPECT_EQ(1u, result.num_regressions);
  EXPECT_FALSE(result.deltas[0].regression);  // a: unchanged.
  EXPECT_FALSE(result.deltas[1].regression);  // b: +24% < threshold.
  EXPECT_TRUE(result.deltas[2].regression);   // c: +50%.
  EXPECT_NEAR(50.0, result.deltas[2].pct_change, 1e-9);
  EXPECT_DOUBLE_EQ(100.0, result.deltas[2].baseline);
  EXPECT_DOUBLE_EQ(150.0, result.deltas[2].current);
}

TEST(Compare, ImprovementsNeverFail) {
  const std::string a = "a.latency_us.mean";
  std::map<std::string, double> baseline = {{a, 200.0}};
  std::map<std::string, double> current = {{a, 50.0}};
  const CompareResult result = Compare(baseline, current, CompareOptions());
  EXPECT_EQ(0u, result.num_regressions);
  EXPECT_NEAR(-75.0, result.deltas[0].pct_change, 1e-9);
}

TEST(Compare, DisjointMetricsReportedNotFailed) {
  std::map<std::string, double> baseline = {
      {"gone.latency_us.mean", 10.0}, {"both.latency_us.mean", 10.0}};
  std::map<std::string, double> current = {
      {"new.latency_us.mean", 10.0}, {"both.latency_us.mean", 10.0}};
  const CompareResult result = Compare(baseline, current, CompareOptions());
  EXPECT_EQ(0u, result.num_regressions);
  ASSERT_EQ(1u, result.only_in_baseline.size());
  EXPECT_EQ("gone.latency_us.mean", result.only_in_baseline[0]);
  ASSERT_EQ(1u, result.only_in_current.size());
  EXPECT_EQ("new.latency_us.mean", result.only_in_current[0]);
}

TEST(Compare, NonGatedLeavesAreIgnored) {
  // A huge swing on a counter or a p99 must not trip the gate.
  std::map<std::string, double> baseline = {
      {"a.latency_us.mean", 100.0},
      {"a.latency_us.p99", 100.0},
      {"counters.merge.runs", 10.0}};
  std::map<std::string, double> current = {{"a.latency_us.mean", 101.0},
                                           {"a.latency_us.p99", 900.0},
                                           {"counters.merge.runs", 9000.0}};
  const CompareResult result = Compare(baseline, current, CompareOptions());
  EXPECT_EQ(0u, result.num_regressions);
  ASSERT_EQ(1u, result.deltas.size());
  EXPECT_EQ("a.latency_us.mean", result.deltas[0].path);
}

TEST(Compare, ZeroBaselineNeverDividesOrFails) {
  std::map<std::string, double> baseline = {{"a.latency_us.mean", 0.0}};
  std::map<std::string, double> current = {{"a.latency_us.mean", 5.0}};
  const CompareResult result = Compare(baseline, current, CompareOptions());
  EXPECT_EQ(0u, result.num_regressions);
}

TEST(Trajectory, AppendAndFindLastRoundTrip) {
  const std::string path = TempPath("trajectory.json");
  WriteFile(path, "[]\n");

  Result<JsonValue> loaded = LoadTrajectory(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  JsonValue trajectory = loaded.value();
  EXPECT_TRUE(trajectory.AsArray().empty());
  EXPECT_EQ(nullptr, FindLastEntry(trajectory, "default"));

  std::map<std::string, double> first = {{"a.latency_us.mean", 100.0}};
  ASSERT_TRUE(
      AppendTrajectoryEntry(path, "default", first, &trajectory).ok());
  std::map<std::string, double> second = {{"a.latency_us.mean", 110.0}};
  ASSERT_TRUE(
      AppendTrajectoryEntry(path, "default", second, &trajectory).ok());
  std::map<std::string, double> other = {{"a.latency_us.mean", 1.0}};
  ASSERT_TRUE(
      AppendTrajectoryEntry(path, "nightly", other, &trajectory).ok());

  // Re-load from disk: the file holds all three entries in order and
  // FindLastEntry picks the latest with a matching label.
  Result<JsonValue> reloaded = LoadTrajectory(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(3u, reloaded.value().AsArray().size());
  const JsonValue* last = FindLastEntry(reloaded.value(), "default");
  ASSERT_NE(nullptr, last);
  EXPECT_DOUBLE_EQ(
      110.0,
      last->Find("metrics")->Find("a.latency_us.mean")->AsNumber());
  const JsonValue* nightly = FindLastEntry(reloaded.value(), "nightly");
  ASSERT_NE(nullptr, nightly);
  EXPECT_DOUBLE_EQ(
      1.0,
      nightly->Find("metrics")->Find("a.latency_us.mean")->AsNumber());
}

TEST(Trajectory, LoadRejectsMissingFileAndNonArray) {
  EXPECT_FALSE(LoadTrajectory(TempPath("does_not_exist.json")).ok());
  const std::string path = TempPath("trajectory_bad.json");
  WriteFile(path, "{\"not\": \"an array\"}");
  EXPECT_FALSE(LoadTrajectory(path).ok());
}

TEST(LoadJsonFile, ParsesARealReportShape) {
  const std::string path = TempPath("report.json");
  WriteFile(path,
            "{\"fig15\": {\"metrics\": {\"histograms\":"
            " {\"core.plan.latency_us\": {\"count\": 3, \"mean\": 42}}}}}");
  Result<JsonValue> doc = LoadJsonFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const std::map<std::string, double> flat = FlattenNumbers(doc.value());
  EXPECT_DOUBLE_EQ(
      42.0,
      flat.at("fig15.metrics.histograms.core.plan.latency_us.mean"));
}

}  // namespace
}  // namespace benchcmp
}  // namespace qsp
