#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "channel/channel_cost.h"
#include "channel/client_set.h"
#include "channel/exhaustive_allocator.h"
#include "channel/hill_climb_allocator.h"
#include "cost/cost_model.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "stats/size_estimator.h"
#include "util/bell.h"
#include "util/rng.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

// -------------------------------------------------------------- ClientSet

TEST(ClientSetTest, SubscriptionsAreSortedAndDeduped) {
  ClientSet clients;
  const ClientId c = clients.AddClient();
  clients.Subscribe(c, 5);
  clients.Subscribe(c, 1);
  clients.Subscribe(c, 5);
  EXPECT_EQ(clients.QueriesOf(c), (std::vector<QueryId>{1, 5}));
}

TEST(ClientSetTest, SubscribersOf) {
  ClientSet clients;
  const ClientId a = clients.AddClient();
  const ClientId b = clients.AddClient();
  clients.Subscribe(a, 7);
  clients.Subscribe(b, 7);
  clients.Subscribe(b, 9);
  EXPECT_EQ(clients.SubscribersOf(7), (std::vector<ClientId>{a, b}));
  EXPECT_EQ(clients.SubscribersOf(9), (std::vector<ClientId>{b}));
  EXPECT_TRUE(clients.SubscribersOf(42).empty());
}

TEST(ClientSetTest, QueriesOfClientsUnion) {
  ClientSet clients;
  const ClientId a = clients.AddClient();
  const ClientId b = clients.AddClient();
  clients.Subscribe(a, 3);
  clients.Subscribe(a, 1);
  clients.Subscribe(b, 3);
  clients.Subscribe(b, 8);
  EXPECT_EQ(clients.QueriesOfClients({a, b}),
            (std::vector<QueryId>{1, 3, 8}));
}

TEST(AllocationTest, CanonicalizeAndValidate) {
  Allocation alloc = {{2, 0}, {}, {1}};
  CanonicalizeAllocation(&alloc);
  ASSERT_EQ(alloc.size(), 2u);
  EXPECT_EQ(alloc[0], (std::vector<ClientId>{0, 2}));
  EXPECT_EQ(alloc[1], (std::vector<ClientId>{1}));
  EXPECT_TRUE(IsValidAllocation(alloc, 3, 2));
  EXPECT_FALSE(IsValidAllocation(alloc, 3, 1));   // Too many channels.
  EXPECT_FALSE(IsValidAllocation(alloc, 4, 2));   // Client 3 missing.
  EXPECT_FALSE(IsValidAllocation({{0, 0}}, 1, 1));  // Duplicate client.
}

TEST(AllocationTest, ToString) {
  EXPECT_EQ(AllocationToString({{0, 2}, {1}}), "[{0,2} {1}]");
}

// ------------------------------------------------------------ Fixtures

/// A small battlefield: clients with geographically coherent queries.
struct ChannelInstance {
  QuerySet queries;
  ClientSet clients;
  UniformDensityEstimator estimator{0.01};
  BoundingRectProcedure procedure;
  std::unique_ptr<MergeContext> ctx;
  CostModel model{4.0, 1.0, 1.0, 0.0};
  std::unique_ptr<ChannelCostEvaluator> evaluator;

  ChannelInstance(size_t num_queries, size_t num_clients, uint64_t seed,
                  double k_d = 0.0) {
    model.k_d = k_d;
    Rng rng(seed);
    QueryGenConfig config;
    config.num_queries = num_queries;
    config.cf = 0.7;
    queries = QuerySet(GenerateQueries(config, &rng));
    clients = AssignClients(queries, num_clients,
                            ClientAssignment::kLocality, &rng);
    ctx = std::make_unique<MergeContext>(&queries, &estimator, &procedure);
    evaluator =
        std::make_unique<ChannelCostEvaluator>(ctx.get(), model, &clients);
  }
};

// --------------------------------------------------- ChannelCostEvaluator

TEST(ChannelCostTest, EmptyChannelIsFree) {
  ChannelInstance inst(6, 3, 1);
  EXPECT_EQ(inst.evaluator->Cost({}), 0.0);
}

TEST(ChannelCostTest, CostIsOrderInsensitiveAndCached) {
  ChannelInstance inst(6, 3, 1);
  const double ab = inst.evaluator->Cost({0, 1});
  const uint64_t evals = inst.evaluator->evaluations();
  EXPECT_DOUBLE_EQ(inst.evaluator->Cost({1, 0}), ab);
  EXPECT_EQ(inst.evaluator->evaluations(), evals);  // Cache hit.
}

TEST(ChannelCostTest, PlanMatchesCost) {
  ChannelInstance inst(8, 4, 2);
  const std::vector<ClientId> channel = {0, 2};
  EXPECT_NEAR(inst.evaluator->Plan(channel).cost,
              inst.evaluator->Cost(channel), 1e-9);
}

TEST(ChannelCostTest, TotalCostAddsKDPerUsedChannel) {
  ChannelInstance inst(6, 3, 3, /*k_d=*/5.0);
  const Allocation one = {{0, 1, 2}};
  const Allocation two = {{0, 1}, {2}};
  const double one_cost = inst.evaluator->TotalCost(one);
  const double two_cost = inst.evaluator->TotalCost(two);
  EXPECT_NEAR(one_cost,
              inst.evaluator->Cost({0, 1, 2}) + 5.0, 1e-9);
  EXPECT_NEAR(two_cost,
              inst.evaluator->Cost({0, 1}) + inst.evaluator->Cost({2}) + 10.0,
              1e-9);
}

TEST(ChannelCostTest, SharedQueryPaidOnEachChannel) {
  // One query subscribed by two clients: splitting them across channels
  // transmits it twice, so the split can never be cheaper than K_M+K_T*S.
  QuerySet queries({Rect(0, 0, 10, 10)});
  ClientSet clients;
  const ClientId a = clients.AddClient();
  const ClientId b = clients.AddClient();
  clients.Subscribe(a, 0);
  clients.Subscribe(b, 0);
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&queries, &est, &proc);
  const CostModel model{1, 1, 1, 0};
  ChannelCostEvaluator evaluator(&ctx, model, &clients);
  const double together = evaluator.TotalCost({{a, b}});
  const double split = evaluator.TotalCost({{a}, {b}});
  EXPECT_NEAR(split, 2.0 * together, 1e-9);
}

TEST(ChannelCostTest, KCheckChargesPerClientPerMessage) {
  // Two clients with disjoint far-apart queries. With k_check > 0,
  // putting both on one channel makes each check the other's message;
  // splitting them removes that cost.
  QuerySet queries({Rect(0, 0, 10, 10), Rect(900, 900, 910, 910)});
  ClientSet clients;
  const ClientId a = clients.AddClient();
  const ClientId b = clients.AddClient();
  clients.Subscribe(a, 0);
  clients.Subscribe(b, 1);
  UniformDensityEstimator est(0.01);
  BoundingRectProcedure proc;
  MergeContext ctx(&queries, &est, &proc);
  CostModel model{1, 1, 1, 0};
  model.k_check = 4.0;
  ChannelCostEvaluator evaluator(&ctx, model, &clients);
  // Together: 2 messages, each checked by 2 clients -> K_M' = 1 + 8.
  // Split: each channel has 1 message checked by 1 client -> K_M' = 5.
  const double together = evaluator.TotalCost({{a, b}});
  const double split = evaluator.TotalCost({{a}, {b}});
  EXPECT_LT(split, together);
  EXPECT_NEAR(together - split, 2 * 4.0, 1e-9);  // Two saved checks.
}

TEST(ChannelCostTest, FromComponentsMultiChannelKeepsK6Separate) {
  const CostModel model =
      CostModel::FromComponentsMultiChannel(1, 2, 3, 4, 5, 6);
  EXPECT_DOUBLE_EQ(model.k_m, 5.0);  // k1 + k4 only.
  EXPECT_DOUBLE_EQ(model.k_t, 5.0);
  EXPECT_DOUBLE_EQ(model.k_u, 5.0);
  EXPECT_DOUBLE_EQ(model.k_check, 6.0);
}

TEST(ChannelCostTest, SplittingNeverHelpsWithoutKCheckOrKD) {
  // With k_check = k_d = 0, one channel can always replicate any split's
  // grouping, so the exhaustive optimum is the single channel.
  ChannelInstance inst(8, 4, 77);
  ExhaustiveAllocator exact;
  auto two = exact.Allocate(*inst.evaluator, 2);
  ASSERT_TRUE(two.ok());
  const double one_channel =
      inst.evaluator->TotalCost({inst.clients.AllClients()});
  EXPECT_NEAR(two->cost, one_channel, 1e-9);
}

// ---------------------------------------------------- ExhaustiveAllocator

TEST(ExhaustiveAllocatorTest, RefusesTooManyClients) {
  ChannelInstance inst(10, 14, 4);
  ExhaustiveAllocator allocator(12);
  EXPECT_FALSE(allocator.Allocate(*inst.evaluator, 2).ok());
}

TEST(ExhaustiveAllocatorTest, RejectsZeroChannels) {
  ChannelInstance inst(6, 3, 4);
  ExhaustiveAllocator allocator;
  EXPECT_FALSE(allocator.Allocate(*inst.evaluator, 0).ok());
}

TEST(ExhaustiveAllocatorTest, SingleChannelPutsEveryoneTogether) {
  ChannelInstance inst(6, 4, 5);
  ExhaustiveAllocator allocator;
  auto result = allocator.Allocate(*inst.evaluator, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->allocation.size(), 1u);
  EXPECT_EQ(result->allocation[0].size(), 4u);
}

TEST(ExhaustiveAllocatorTest, CandidateCountMatchesStirlingSums) {
  ChannelInstance inst(6, 5, 6);
  ExhaustiveAllocator allocator;
  auto result = allocator.Allocate(*inst.evaluator, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates, PartitionsIntoAtMost(5, 3));
}

TEST(ExhaustiveAllocatorTest, ValidAllocationAndConsistentCost) {
  ChannelInstance inst(8, 6, 7);
  ExhaustiveAllocator allocator;
  auto result = allocator.Allocate(*inst.evaluator, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidAllocation(result->allocation, 6, 2));
  EXPECT_NEAR(result->cost, inst.evaluator->TotalCost(result->allocation),
              1e-9);
}

// ----------------------------------------------------- HillClimbAllocator

TEST(HillClimbTest, SeededStartCoversAllClients) {
  ChannelInstance inst(10, 6, 8);
  const Allocation start =
      HillClimbAllocator::SeededStart(*inst.evaluator, 3);
  EXPECT_EQ(start.size(), 3u);
  Allocation copy = start;
  CanonicalizeAllocation(&copy);
  EXPECT_TRUE(IsValidAllocation(copy, 6, 3));
}

TEST(HillClimbTest, RandomStartCoversAllClients) {
  Rng rng(9);
  Allocation start = HillClimbAllocator::RandomStart(7, 3, &rng);
  CanonicalizeAllocation(&start);
  EXPECT_TRUE(IsValidAllocation(start, 7, 3));
}

TEST(HillClimbTest, ProducesValidAllocation) {
  ChannelInstance inst(12, 6, 10);
  HillClimbAllocator allocator(StartPolicy::kBestOfBoth, 1);
  auto result = allocator.Allocate(*inst.evaluator, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidAllocation(result->allocation, 6, 3));
  EXPECT_NEAR(result->cost, inst.evaluator->TotalCost(result->allocation),
              1e-9);
}

TEST(HillClimbTest, BestOfBothIsNoWorseThanEitherPolicy) {
  ChannelInstance inst(12, 6, 11);
  HillClimbAllocator seeded(StartPolicy::kSeeded, 3);
  HillClimbAllocator random(StartPolicy::kRandom, 3);
  HillClimbAllocator both(StartPolicy::kBestOfBoth, 3);
  auto s = seeded.Allocate(*inst.evaluator, 3);
  auto r = random.Allocate(*inst.evaluator, 3);
  auto b = both.Allocate(*inst.evaluator, 3);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->cost, s->cost + 1e-9);
  EXPECT_LE(b->cost, r->cost + 1e-9);
}

TEST(HillClimbTest, RejectsZeroChannels) {
  ChannelInstance inst(6, 3, 12);
  HillClimbAllocator allocator;
  EXPECT_FALSE(allocator.Allocate(*inst.evaluator, 0).ok());
}

/// Property backing Figures 18/19: the heuristic lands in
/// [optimal, no-merging] and is exactly optimal in most runs.
class AllocationQuality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocationQuality, HeuristicWithinBracket) {
  ChannelInstance inst(10, 6, GetParam());
  ExhaustiveAllocator exact;
  HillClimbAllocator heuristic(StartPolicy::kBestOfBoth, GetParam());
  auto optimal = exact.Allocate(*inst.evaluator, 2);
  auto result = heuristic.Allocate(*inst.evaluator, 2);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->cost, optimal->cost - 1e-9);
  // All clients on one channel is always a feasible allocation, so the
  // heuristic must beat or match it.
  const double one_channel =
      inst.evaluator->TotalCost({inst.clients.AllClients()});
  EXPECT_LE(result->cost, one_channel + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationQuality,
                         ::testing::Range<uint64_t>(700, 712));

}  // namespace
}  // namespace qsp
