// Lossy-channel fault injection + NACK-based recovery (DESIGN.md §6):
// neutrality of the reliability path with zero rates, exact recovery
// accounting for programmed losses, graceful degradation on max_retx
// exhaustion, determinism from the fault seed, and end-to-end
// correctness under random loss with a sufficient retransmission budget.
//
// The CI fault matrix varies QSP_FAULT_SEED; every test must hold for
// any seed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include "core/subscription_service.h"
#include "net/fault_injector.h"
#include "net/message.h"
#include "net/sim_client.h"
#include "net/simulator.h"
#include "obs/metrics.h"
#include "query/merge_procedure.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "util/rng.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// Fault seed for the stochastic tests; the CI sanitizer job runs the
/// suite under several values.
uint64_t FaultSeed() {
  const char* env = std::getenv("QSP_FAULT_SEED");
  if (env == nullptr) return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// Small end-to-end world: table + index + queries + clients.
struct World {
  Rect domain{0, 0, 100, 100};
  Table table;
  std::unique_ptr<GridIndex> index;
  QuerySet queries;
  ClientSet clients;

  explicit World(uint64_t seed, size_t num_objects = 500,
                 size_t num_queries = 6, size_t num_clients = 3)
      : table(Schema::Geographic(0)) {
    Rng rng(seed);
    TableGeneratorConfig tconfig;
    tconfig.domain = domain;
    tconfig.num_objects = num_objects;
    tconfig.payload_fields = 0;
    table = GenerateTable(tconfig, &rng);
    index = std::make_unique<GridIndex>(table, domain);
    QueryGenConfig qconfig;
    qconfig.domain = domain;
    qconfig.num_queries = num_queries;
    qconfig.max_extent = 0.3;
    queries = QuerySet(GenerateQueries(qconfig, &rng));
    clients = AssignClients(queries, num_clients,
                            ClientAssignment::kLocality, &rng);
  }

  DisseminationPlan UnmergedPlan() const {
    DisseminationPlan plan;
    plan.allocation.push_back(clients.AllClients());
    plan.channel_partitions.push_back(SingletonPartition(queries.size()));
    return plan;
  }

  DisseminationPlan TwoChannelPlan() const {
    DisseminationPlan plan;
    const auto all = clients.AllClients();
    const size_t half = all.size() / 2;
    plan.allocation.emplace_back(all.begin(), all.begin() + half);
    plan.allocation.emplace_back(all.begin() + half, all.end());
    for (const auto& channel_clients : plan.allocation) {
      // Each channel serves the union of its clients' subscriptions,
      // one singleton group per query.
      std::set<QueryId> served;
      for (ClientId c : channel_clients) {
        for (QueryId q : clients.QueriesOf(c)) served.insert(q);
      }
      Partition partition;
      for (QueryId q : served) partition.push_back(QueryGroup{q});
      plan.channel_partitions.push_back(partition);
    }
    return plan;
  }
};

// ------------------------------------------------------------ neutrality

TEST(FaultNeutralityTest, ZeroPolicyReproducesLosslessStatsExactly) {
  World world(41);
  BoundingRectProcedure proc;
  MulticastSimulator lossless(&world.table, world.index.get(), &world.queries,
                              &world.clients);
  MulticastSimulator lossy(&world.table, world.index.get(), &world.queries,
                           &world.clients, /*enable_client_cache=*/false,
                           /*verify_wire=*/false, FaultPolicy{});
  const RoundStats a = lossless.RunRound(world.UnmergedPlan(), proc);
  const RoundStats b = lossy.RunRound(world.UnmergedPlan(), proc);
  EXPECT_EQ(a, b);  // Every field, including the recovery counters.
  EXPECT_TRUE(b.all_answers_correct);
  EXPECT_EQ(b.drops, 0u);
  EXPECT_EQ(b.nacks, 0u);
  EXPECT_EQ(b.retx_messages, 0u);
  EXPECT_EQ(b.incomplete_answers, 0u);
}

TEST(FaultNeutralityTest, ZeroPolicyMatchesOnMergedMultiChannelPlans) {
  World world(42, 800, 8, 4);
  BoundingRectProcedure proc;
  MulticastSimulator lossless(&world.table, world.index.get(), &world.queries,
                              &world.clients);
  MulticastSimulator lossy(&world.table, world.index.get(), &world.queries,
                           &world.clients, false, false, FaultPolicy{});
  const DisseminationPlan plan = world.TwoChannelPlan();
  EXPECT_EQ(lossless.RunRound(plan, proc, ExtractionMode::kServerTags),
            lossy.RunRound(plan, proc, ExtractionMode::kServerTags));
}

// --------------------------------------------------- programmed recovery

TEST(FaultRecoveryTest, SingleLossYieldsExactlyOneNackAndOneRetransmission) {
  World world(43, 500, 6, /*num_clients=*/1);
  // The lost message must carry a nonempty answer for the loss to matter.
  ASSERT_FALSE(world.index->Query(world.queries.rect(0)).empty());
  FaultPolicy policy;
  policy.drop_seq_first_tx = {0};  // Lose message 0's initial broadcast.
  BoundingRectProcedure proc;
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, false, false, policy);
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_EQ(stats.nacks, 1u);
  EXPECT_EQ(stats.retx_messages, 1u);
  EXPECT_EQ(stats.retx_rounds, 1u);
  EXPECT_EQ(stats.backoff_units, 1u);
  EXPECT_GT(stats.retx_bytes, 0u);
  EXPECT_TRUE(stats.all_answers_correct);
  EXPECT_EQ(stats.incomplete_answers, 0u);
  for (const SimClient& client : sim.sim_clients()) {
    for (QueryId q : client.subscriptions()) {
      EXPECT_EQ(client.StatusFor(q), AnswerStatus::kComplete);
    }
  }
}

TEST(FaultRecoveryTest, MaxRetxExhaustionDegradesToPartialAnswers) {
  World world(43, 500, 6, /*num_clients=*/1);
  ASSERT_FALSE(world.index->Query(world.queries.rect(0)).empty());
  FaultPolicy policy;
  policy.drop_seq_every_tx = {0};  // Message 0 never gets through.
  policy.max_retx = 2;
  BoundingRectProcedure proc;
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, false, false, policy);
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  // One NACK and one (dropped) retransmission per recovery pass.
  EXPECT_EQ(stats.nacks, 2u);
  EXPECT_EQ(stats.retx_messages, 2u);
  EXPECT_EQ(stats.retx_rounds, 2u);
  EXPECT_EQ(stats.backoff_units, 3u);  // 2^0 + 2^1.
  EXPECT_EQ(stats.drops, 3u);          // Initial + both retransmissions.
  EXPECT_FALSE(stats.all_answers_correct);
  // The single client cannot know what the lost message carried: every
  // subscription degrades — failed for the starved query, partial for
  // the ones that did receive data.
  ASSERT_EQ(sim.sim_clients().size(), 1u);
  const SimClient& client = sim.sim_clients()[0];
  EXPECT_EQ(stats.incomplete_answers, client.subscriptions().size());
  EXPECT_EQ(client.StatusFor(0), AnswerStatus::kFailed);
  size_t partial = 0;
  for (QueryId q : client.subscriptions()) {
    if (client.StatusFor(q) == AnswerStatus::kPartial) ++partial;
  }
  EXPECT_EQ(partial, client.subscriptions().size() - 1);
}

TEST(FaultRecoveryTest, LateJoinersRecoverEverythingViaNacks) {
  World world(44, 500, 6, 3);
  FaultPolicy policy;
  policy.late_join_rate = 1.0;  // Everyone misses the broadcast pass.
  BoundingRectProcedure proc;
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, false, false, policy);
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  EXPECT_EQ(stats.late_join_clients, 3u);
  EXPECT_EQ(stats.retx_messages, stats.num_messages);
  EXPECT_GT(stats.nacks, 0u);
  EXPECT_TRUE(stats.all_answers_correct);
  EXPECT_EQ(stats.incomplete_answers, 0u);
}

TEST(FaultRecoveryTest, DuplicateFloodIsIgnoredBySequenceDedup) {
  World world(45, 500, 6, 3);
  FaultPolicy policy;
  policy.duplicate_rate = 1.0;  // Every delivery arrives twice.
  BoundingRectProcedure proc;
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, false, false, policy);
  MulticastSimulator lossless(&world.table, world.index.get(), &world.queries,
                              &world.clients);
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  const RoundStats base = lossless.RunRound(world.UnmergedPlan(), proc);
  EXPECT_TRUE(stats.all_answers_correct);
  EXPECT_GT(stats.duplicate_deliveries, 0u);
  // Duplicates cost header checks but never re-extraction.
  EXPECT_EQ(stats.headers_checked, 2 * base.headers_checked);
  EXPECT_EQ(stats.rows_examined, base.rows_examined);
  EXPECT_EQ(stats.irrelevant_rows, base.irrelevant_rows);
}

// ----------------------------------------------------------- determinism

TEST(FaultDeterminismTest, SameSeedProducesIdenticalRoundStats) {
  World world(46, 700, 8, 4);
  FaultPolicy policy;
  policy.drop_rate = 0.2;
  policy.duplicate_rate = 0.1;
  policy.reorder_rate = 0.2;
  policy.corrupt_rate = 0.001;
  policy.crash_rate = 0.1;
  policy.late_join_rate = 0.1;
  policy.max_retx = 4;
  policy.seed = FaultSeed();
  BoundingRectProcedure proc;
  MulticastSimulator sim_a(&world.table, world.index.get(), &world.queries,
                           &world.clients, false, false, policy);
  MulticastSimulator sim_b(&world.table, world.index.get(), &world.queries,
                           &world.clients, false, false, policy);
  const DisseminationPlan plan = world.TwoChannelPlan();
  for (int round = 0; round < 3; ++round) {
    const RoundStats a = sim_a.RunRound(plan, proc);
    const RoundStats b = sim_b.RunRound(plan, proc);
    EXPECT_EQ(a, b) << "round " << round;
  }
}

// ------------------------------------------------- random-loss recovery

TEST(FaultRecoveryTest, RandomLossStillCorrectWithGenerousRetxBudget) {
  World world(47, 800, 10, 4);
  FaultPolicy policy;
  policy.drop_rate = 0.2;
  policy.max_retx = 16;
  policy.seed = FaultSeed();
  BoundingRectProcedure proc;
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, false, false, policy);
  const RoundStats stats = sim.RunRound(world.TwoChannelPlan(), proc);
  EXPECT_GT(stats.drops, 0u);
  EXPECT_GT(stats.nacks, 0u);
  EXPECT_GT(stats.retx_messages, 0u);
  EXPECT_TRUE(stats.all_answers_correct);
  EXPECT_EQ(stats.incomplete_answers, 0u);
}

TEST(FaultRecoveryTest, CorruptionIsDetectedAndRecovered) {
  World world(48, 600, 6, 3);
  FaultPolicy policy;
  policy.corrupt_rate = 0.002;  // A few bytes per frame on average.
  policy.max_retx = 16;
  policy.seed = FaultSeed();
  BoundingRectProcedure proc;
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, false, false, policy);
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  // Corrupted frames are rejected by the CRC and recovered like drops.
  EXPECT_EQ(stats.corrupted_frames > 0, stats.retx_messages > 0);
  EXPECT_TRUE(stats.all_answers_correct);
}

TEST(FaultChurnTest, CrashAndChurnNeverCauseUndefinedBehavior) {
  World world(49, 600, 8, 5);
  FaultPolicy policy;
  policy.drop_rate = 0.1;
  policy.duplicate_rate = 0.2;
  policy.reorder_rate = 0.3;
  policy.corrupt_rate = 0.002;
  policy.crash_rate = 0.5;
  policy.late_join_rate = 0.3;
  policy.max_retx = 4;
  policy.seed = FaultSeed();
  BoundingRectProcedure proc;
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, false, false, policy);
  for (int round = 0; round < 5; ++round) {
    const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
    EXPECT_LE(stats.crashed_clients + stats.late_join_clients, 5u);
    size_t subs = 0;
    for (const SimClient& client : sim.sim_clients()) {
      subs += client.subscriptions().size();
    }
    EXPECT_LE(stats.incomplete_answers, subs);
  }
}

// -------------------------------------------------------- client hygiene

TEST(FaultClientTest, MisroutedMessagesAreCountedNotFatal) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  QuerySet queries({Rect(0, 0, 5, 5)});
  SimClient client(0, /*channel=*/1, &queries, {0});
  client.StartRound();
  Message msg;
  msg.channel = 0;  // Not this client's channel.
  msg.recipients = {0};
  msg.payload = {0};
  client.Receive(msg, table);
  EXPECT_EQ(client.stats().misrouted_messages, 1u);
  EXPECT_EQ(client.stats().headers_checked, 0u);
  EXPECT_TRUE(client.AnswerFor(0).empty());
}

// -------------------------------------------------- service + telemetry

TEST(FaultServiceTest, ServiceConfigPlumbsFaultPolicyAndObsCountsRecovery) {
  Rng rng(50);
  TableGeneratorConfig tconfig;
  tconfig.domain = Rect(0, 0, 100, 100);
  tconfig.num_objects = 800;
  Table data = GenerateTable(tconfig, &rng);

  ServiceConfig config;
  config.telemetry = true;
  config.fault.drop_rate = 0.2;
  config.fault.max_retx = 16;
  config.fault.seed = FaultSeed();
  SubscriptionService service(std::move(data), tconfig.domain, config);

  QueryGenConfig qconfig;
  qconfig.domain = tconfig.domain;
  qconfig.num_queries = 8;
  qconfig.max_extent = 0.3;
  Rng qrng(51);
  for (const Rect& rect : GenerateQueries(qconfig, &qrng)) {
    service.Subscribe(service.AddClient(), rect);
  }
  obs::MetricRegistry::Default().Reset();

  ASSERT_TRUE(service.Plan().ok());
  auto round = service.RunRound();
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->all_answers_correct);
  EXPECT_GT(round->retx_messages, 0u);

  const auto& registry = obs::MetricRegistry::Default();
  EXPECT_EQ(registry.CounterValue("net.recover.retx_messages"),
            round->retx_messages);
  EXPECT_EQ(registry.CounterValue("net.recover.nacks"), round->nacks);
  EXPECT_EQ(registry.CounterValue("net.recover.drops"), round->drops);
  obs::SetEnabled(false);
}

TEST(FaultServiceTest, DisengagedPolicyKeepsServiceOnLosslessPath) {
  Rng rng(52);
  TableGeneratorConfig tconfig;
  tconfig.domain = Rect(0, 0, 100, 100);
  tconfig.num_objects = 300;
  Table data = GenerateTable(tconfig, &rng);

  ServiceConfig config;
  config.fault.max_retx = 7;  // Budget alone does not engage faults.
  EXPECT_FALSE(config.fault.Engaged());
  SubscriptionService service(std::move(data), tconfig.domain, config);
  service.Subscribe(service.AddClient(), Rect(10, 10, 40, 40));
  ASSERT_TRUE(service.Plan().ok());
  auto round = service.RunRound();
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->all_answers_correct);
  EXPECT_EQ(round->nacks, 0u);
  EXPECT_EQ(round->retx_messages, 0u);
}

}  // namespace
}  // namespace qsp
