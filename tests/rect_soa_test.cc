// RectSoA (geom/rect_soa.h): structure-of-arrays rect storage behind the
// sharded planner's batch kernels. Every batch kernel must agree exactly
// with the scalar Rect call it mirrors — the SoA layout is a speed
// change, never a semantics change.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "geom/rect_soa.h"
#include "geom/spatial_grid.h"
#include "util/rng.h"

namespace qsp {
namespace {

std::vector<Rect> MixedRects(size_t n, uint64_t seed, double empty_prob) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.UniformDouble(0, 1) < empty_prob) {
      rects.push_back(Rect::Empty());
      continue;
    }
    const double x = rng.UniformDouble(-100, 900);
    const double y = rng.UniformDouble(-100, 900);
    rects.push_back(Rect(x, y, x + rng.UniformDouble(0.0, 150),
                         y + rng.UniformDouble(0.0, 150)));
  }
  return rects;
}

TEST(RectSoATest, RoundTripsRectsLosslessly) {
  const std::vector<Rect> rects = MixedRects(200, 11, 0.1);
  RectSoA soa(rects);
  ASSERT_EQ(soa.size(), rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ(soa.Get(i), rects[i]) << "index " << i;
    EXPECT_EQ(soa.IsEmpty(i), rects[i].IsEmpty()) << "index " << i;
  }
}

TEST(RectSoATest, BatchIntersectsMatchesScalar) {
  const std::vector<Rect> rects = MixedRects(300, 12, 0.1);
  RectSoA soa(rects);
  Rng rng(13);
  std::vector<unsigned char> hits(rects.size());
  for (int trial = 0; trial < 40; ++trial) {
    Rect window = Rect::Empty();
    if (trial > 0) {
      const double x = rng.UniformDouble(-150, 950);
      const double y = rng.UniformDouble(-150, 950);
      window = Rect(x, y, x + rng.UniformDouble(0, 400),
                    y + rng.UniformDouble(0, 400));
    }
    soa.BatchIntersects(window, hits.data());
    size_t scalar_count = 0;
    for (size_t i = 0; i < rects.size(); ++i) {
      const bool scalar = rects[i].Intersects(window);
      EXPECT_EQ(hits[i] != 0, scalar)
          << "rect " << rects[i].ToString() << " window "
          << window.ToString();
      scalar_count += static_cast<size_t>(scalar);
    }
    EXPECT_EQ(soa.CountIntersecting(window), scalar_count);
  }
}

TEST(RectSoATest, BatchAreaMatchesScalar) {
  const std::vector<Rect> rects = MixedRects(300, 14, 0.15);
  RectSoA soa(rects);
  std::vector<double> areas(rects.size());
  soa.BatchArea(areas.data());
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ(areas[i], rects[i].Area()) << "index " << i;
  }
}

TEST(RectSoATest, BoundingUnionAllMatchesScalarFold) {
  const std::vector<Rect> rects = MixedRects(250, 15, 0.2);
  RectSoA soa(rects);
  Rect want = Rect::Empty();
  for (const Rect& r : rects) {
    if (!r.IsEmpty()) want = want.BoundingUnion(r);
  }
  EXPECT_EQ(soa.BoundingUnionAll(), want);

  RectSoA all_empty(std::vector<Rect>(5, Rect::Empty()));
  EXPECT_TRUE(all_empty.BoundingUnionAll().IsEmpty());
  EXPECT_TRUE(RectSoA().BoundingUnionAll().IsEmpty());
}

TEST(RectSoATest, BatchShardOfMatchesGridCellOfCenters) {
  const std::vector<Rect> rects = MixedRects(400, 16, 0.1);
  RectSoA soa(rects);
  const Rect bounds = soa.BoundingUnionAll();
  const int cells_x = 4, cells_y = 3;
  std::vector<int32_t> shard(rects.size());
  soa.BatchShardOf(bounds, cells_x, cells_y, shard.data());

  // Oracle: a SpatialGrid over the same bounds; a point rect at each
  // center must land in exactly the cell the batch kernel computed.
  SpatialGrid grid(bounds, cells_x, cells_y);
  for (size_t i = 0; i < rects.size(); ++i) {
    if (rects[i].IsEmpty()) {
      EXPECT_EQ(shard[i], RectSoA::kBoundlessShard) << "index " << i;
      continue;
    }
    ASSERT_GE(shard[i], 0) << "index " << i;
    ASSERT_LT(shard[i], cells_x * cells_y) << "index " << i;
    const Point c = rects[i].Center();
    grid.Insert(static_cast<uint32_t>(i), Rect(c.x, c.y, c.x, c.y));
    std::vector<uint32_t> out;
    grid.Query(Rect(c.x, c.y, c.x, c.y), &out);
    EXPECT_TRUE(std::count(out.begin(), out.end(),
                           static_cast<uint32_t>(i)))
        << "center lookup disagrees at index " << i;
    grid.Remove(static_cast<uint32_t>(i), Rect(c.x, c.y, c.x, c.y));
  }

  // Determinism: same input, same assignment.
  std::vector<int32_t> again(rects.size());
  soa.BatchShardOf(bounds, cells_x, cells_y, again.data());
  EXPECT_EQ(shard, again);

  // Non-finite centers clamp instead of invoking UB.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  RectSoA wild(std::vector<Rect>{Rect(-kInf, -kInf, kInf, kInf)});
  int32_t s = 99;
  wild.BatchShardOf(bounds, cells_x, cells_y, &s);
  EXPECT_GE(s, 0);
  EXPECT_LT(s, cells_x * cells_y);
}

}  // namespace
}  // namespace qsp
