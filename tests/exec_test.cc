#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace qsp {
namespace {

// Restores the serial default on scope exit so no test leaks a pool into
// the others (the default executor is process-global).
struct ScopedThreads {
  explicit ScopedThreads(int n) { exec::SetDefaultThreads(n); }
  ~ScopedThreads() { exec::SetDefaultThreads(1); }
};

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  exec::ThreadPool pool(4);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossRegions) {
  exec::ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * (99u * 100u / 2));
}

TEST(ThreadPoolTest, NestedRegionsRunSerially) {
  // A region launched from inside a worker must not wait on the pool's
  // own capacity (classic self-deadlock); it degenerates to a serial
  // loop on that worker.
  exec::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPoolTest, CallingThreadIsNotAWorker) {
  exec::ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorker());
  std::atomic<int> in_worker{0};
  pool.ParallelFor(64, [&](size_t) {
    if (pool.InWorker()) in_worker.fetch_add(1, std::memory_order_relaxed);
  });
  // The calling thread participates too, so not every index runs on a
  // worker — but with 64 indices and a parked 2-thread pool at least one
  // should (this is a liveness smoke check, not a scheduling guarantee).
  EXPECT_GE(in_worker.load(), 0);
}

// ------------------------------------------------------- default executor

TEST(DefaultExecutorTest, SerialByDefault) {
  EXPECT_EQ(exec::DefaultThreads(), 1);
  EXPECT_EQ(exec::DefaultPool(), nullptr);
}

TEST(DefaultExecutorTest, SetThreadsBuildsAndTearsDownPool) {
  {
    ScopedThreads threads(4);
    ASSERT_NE(exec::DefaultPool(), nullptr);
    EXPECT_EQ(exec::DefaultThreads(), 4);
    EXPECT_EQ(exec::DefaultPool()->num_threads(), 4);
  }
  EXPECT_EQ(exec::DefaultPool(), nullptr);
  EXPECT_EQ(exec::DefaultThreads(), 1);
}

TEST(DefaultExecutorTest, FreeParallelForWorksWithAndWithoutPool) {
  for (const int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    std::vector<int> out(257, 0);
    exec::ParallelFor(out.size(), [&](size_t i) {
      out[i] = static_cast<int>(i) * 2;
    });
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<int>(i) * 2) << "threads " << threads;
    }
  }
}

TEST(DefaultExecutorTest, ParallelMapPreservesIndexOrder) {
  for (const int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const std::vector<uint64_t> squares =
        exec::ParallelMap<uint64_t>(1000, [](size_t i) {
          return static_cast<uint64_t>(i) * i;
        });
    ASSERT_EQ(squares.size(), 1000u);
    for (size_t i = 0; i < squares.size(); ++i) {
      ASSERT_EQ(squares[i], i * i) << "threads " << threads;
    }
  }
}

TEST(DefaultExecutorTest, SerialPathRunsInAscendingOrderOnCallingThread) {
  // threads=1 must preserve the historical evaluation order exactly —
  // the byte-identical-figures guarantee depends on it.
  ASSERT_EQ(exec::DefaultPool(), nullptr);
  std::vector<size_t> order;
  exec::ParallelFor(100, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> ascending(100);
  std::iota(ascending.begin(), ascending.end(), size_t{0});
  EXPECT_EQ(order, ascending);
}

// --------------------------------------------- obs under concurrent load

TEST(ObsConcurrencyTest, CountersSumAcrossThreads) {
  obs::SetEnabled(true);
  obs::MetricRegistry::Default().Reset();
  ScopedThreads scoped(8);
  constexpr int kIters = 10000;
  exec::ParallelFor(kIters, [&](size_t i) {
    obs::Count("exec_test.concurrent_counter");
    if (i % 2 == 0) obs::Count("exec_test.even_counter", 2);
  });
  EXPECT_EQ(obs::MetricRegistry::Default().CounterValue(
                "exec_test.concurrent_counter"),
            static_cast<uint64_t>(kIters));
  EXPECT_EQ(obs::MetricRegistry::Default().CounterValue(
                "exec_test.even_counter"),
            static_cast<uint64_t>(kIters));
  obs::MetricRegistry::Default().Reset();
  obs::SetEnabled(false);
}

TEST(ObsConcurrencyTest, HistogramAndRegistryLookupsAreSafe) {
  obs::SetEnabled(true);
  obs::MetricRegistry::Default().Reset();
  ScopedThreads scoped(8);
  // Name-keyed lookups race on first use; recording races on the shared
  // histogram. Both must neither crash nor lose samples.
  exec::ParallelFor(4000, [&](size_t i) {
    obs::Observe("exec_test.histogram", static_cast<double>(i % 97));
    obs::SetGauge("exec_test.gauge", static_cast<double>(i));
  });
  auto& hist =
      obs::MetricRegistry::Default().histogram("exec_test.histogram");
  EXPECT_EQ(hist.count(), 4000u);
  EXPECT_GE(hist.Percentile(50), 0.0);
  obs::MetricRegistry::Default().Reset();
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace qsp
