// qsp_explain — EXPLAIN a merge plan (DESIGN.md §10).
//
//   qsp_explain [options]
//
// Loads a scenario, runs a merger over it, and prints the structured
// PlanExplain: per merged group its members, MBR, estimated (and
// optionally exact) size, the Section 4 cost terms, and the
// BenefitBounder's bound/refinement accounting.
//
// Options (defaults in brackets):
//   --scenario fig16|workload|live [fig16]
//       fig16    the Figure 16 evaluation setting (hybrid clustered
//                workload, adversarial cost constants, uniform estimator)
//       workload the qspctl-style generic workload knobs below
//       live     the long-lived service loop: admit the fig16 workload
//                through leased admission, retire every third query, and
//                EXPLAIN the incrementally repaired plan it serves
//                (honors --queries, --seed, --no-pruning, --format)
//   --queries N [12]    --seed N [fig16: 1000*queries; workload: 42]
//   --merger pair|directed|clustering|exact [pair]
//   --shards N [1]      plan through the ShardedPlanner (DESIGN.md §12);
//                       groups gain a shard= attribution (shard=seam for
//                       boundary-pass groups). 1 = plain merge, output
//                       unchanged. Ignored by --scenario live.
//   --assign balanced|grid [balanced]
//                       shard assignment for --shards > 1 (DESIGN.md
//                       §13). balanced also emits the bisection cut
//                       tree and per-shard cost estimates (text + JSON);
//                       unsharded output never carries either.
//   --no-pruning        disable the BenefitBounder fast path
//   --exact             also report exact merged sizes, measured against
//                       a generated table (--objects N [5000])
//   --format text|json [text]
//   workload-mode knobs: --cf F [0.6] --sf F [0.5] --df F [0.03]
//       --min-extent F [0.02] --max-extent F [0.1] --density F [0.0005]
//       --km F [10] --kt F [9] --ku F [4]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "core/live_plan.h"
#include "core/subscription_service.h"
#include "merge/sharded_planner.h"
#include "obs/clock.h"
#include "obs/plan_explain.h"
#include "query/merge_procedure.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/exact_estimator.h"
#include "stats/size_estimator.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// Minimal --key value argument map (same shape as qspctl's).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";  // Boolean flag.
      }
    }
  }

  double F(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t I(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  std::string S(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

MergerKind MergerFromArgs(const Args& args, std::string* name) {
  *name = args.S("merger", "pair");
  if (*name == "pair") return MergerKind::kPairMerging;
  if (*name == "directed") return MergerKind::kDirectedSearch;
  if (*name == "clustering") return MergerKind::kClustering;
  if (*name == "exact") return MergerKind::kPartitionExact;
  std::fprintf(stderr, "unknown --merger '%s'\n", name->c_str());
  std::exit(2);
}

/// --scenario live: drive the long-lived service loop (DESIGN.md §11)
/// through a scripted admit/retire sequence and EXPLAIN the repaired
/// plan it is currently serving. Unlike the one-shot scenarios, this
/// plan is the product of AddQuery/RemoveQuery/Repair maintenance, not
/// of a single merge — the dump shows what the service would actually
/// disseminate mid-lifetime.
int RunLive(const Args& args) {
  const size_t num_queries = static_cast<size_t>(args.I("queries", 12));
  const QueryGenConfig workload = bench::Fig16WorkloadConfig(num_queries);
  const CostModel model = bench::Fig16CostModel();
  const uint64_t seed = static_cast<uint64_t>(
      args.I("seed", static_cast<int64_t>(1000 * num_queries)));

  QuerySet queries;
  UniformDensityEstimator estimator(bench::kFig16Density);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);

  obs::FakeClock clock(0.0);
  LiveServiceConfig opts;
  opts.enabled = true;
  opts.clock = &clock;
  opts.admission_batch_max = static_cast<size_t>(-1);
  opts.admission_queue_limit = static_cast<size_t>(-1);
  opts.repair_max_moves = 0;  // Repair each batch to a local minimum.
  opts.pruning = !args.Has("no-pruning");
  LivePlanManager live(&queries, &ctx, model, opts);

  Rng rng(seed);
  for (const Rect& rect : GenerateQueries(workload, &rng)) {
    if (!live.Subscribe(rect, 0).ok()) {
      std::fprintf(stderr, "live subscribe failed\n");
      return 1;
    }
  }
  QSP_IGNORE_RESULT(live.DrainAll());
  // Retire every third subscription so the dumped plan reflects
  // removal-induced repair, then settle the queue again.
  for (QueryId id = 0; id < num_queries; id += 3) {
    QSP_IGNORE_RESULT(live.Unsubscribe(id));
  }
  QSP_IGNORE_RESULT(live.DrainAll());

  obs::PlanExplainer explainer(&ctx, model);
  explainer.AddLabel("scenario", "live");
  explainer.AddLabel("merger", "incremental");
  explainer.AddLabel("procedure", "rect");
  explainer.AddLabel("estimator", "uniform");
  // No initial-cost line: the context still holds retired queries (ids
  // are stable for the service's lifetime), so Cost_initial over the
  // whole QuerySet would not describe the live population.
  const obs::PlanExplain explain = explainer.Explain(live.PlanSnapshot());

  const std::string format = args.S("format", "text");
  if (format == "text") {
    std::fputs(explain.ToText().c_str(), stdout);
  } else if (format == "json") {
    std::printf("%s\n", explain.ToJson().c_str());
  } else {
    std::fprintf(stderr, "unknown --format '%s'\n", format.c_str());
    return 2;
  }
  return 0;
}

int Run(const Args& args) {
  const std::string scenario = args.S("scenario", "fig16");
  if (scenario == "live") return RunLive(args);
  const size_t num_queries = static_cast<size_t>(args.I("queries", 12));

  QueryGenConfig workload;
  double density = 0.0;
  CostModel model;
  uint64_t seed = 0;
  if (scenario == "fig16") {
    workload = bench::Fig16WorkloadConfig(num_queries);
    density = bench::kFig16Density;
    model = bench::Fig16CostModel();
    // The seed of trial 0 at this |Q| in the fig16 harness.
    seed = static_cast<uint64_t>(
        args.I("seed", static_cast<int64_t>(1000 * num_queries)));
  } else if (scenario == "workload") {
    workload.domain = Rect(0, 0, 1000, 1000);
    workload.num_queries = num_queries;
    workload.cf = args.F("cf", 0.6);
    workload.sf = args.F("sf", 0.5);
    workload.df = args.F("df", 0.03);
    workload.min_extent = args.F("min-extent", 0.02);
    workload.max_extent = args.F("max-extent", 0.1);
    density = args.F("density", bench::kFig16Density);
    model.k_m = args.F("km", 10.0);
    model.k_t = args.F("kt", 9.0);
    model.k_u = args.F("ku", 4.0);
    seed = static_cast<uint64_t>(args.I("seed", 42));
  } else {
    std::fprintf(stderr, "unknown --scenario '%s'\n", scenario.c_str());
    return 2;
  }

  bench::Instance instance(workload, seed, density);

  std::string merger_name;
  const MergerKind merger_kind = MergerFromArgs(args, &merger_name);
  const bool pruning = !args.Has("no-pruning");
  const auto merger = MakeMerger(merger_kind, seed, pruning);
  const int shards = static_cast<int>(args.I("shards", 1));
  const std::string assign_name = args.S("assign", "balanced");
  ShardAssign assign = ShardAssign::kBalanced;
  if (assign_name == "grid") {
    assign = ShardAssign::kGrid;
  } else if (assign_name != "balanced") {
    std::fprintf(stderr, "unknown --assign '%s'\n", assign_name.c_str());
    return 2;
  }
  MergeOutcome outcome;
  std::vector<int32_t> group_shard;
  ShardLayout layout;
  if (shards > 1) {
    const ShardedPlanner planner(
        merger.get(), ShardedPlanner::Options{shards, assign, pruning});
    Result<ShardedMergeOutcome> plan = planner.Plan(*instance.ctx, model);
    if (!plan.ok()) {
      std::fprintf(stderr, "sharded merge failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    outcome = std::move(plan.value().outcome);
    group_shard = std::move(plan.value().group_shard);
    layout = std::move(plan.value().layout);
  } else {
    Result<MergeOutcome> merged = merger->Merge(*instance.ctx, model);
    if (!merged.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }
    outcome = std::move(merged.value());
  }

  obs::PlanExplainer explainer(instance.ctx.get(), model);
  explainer.AddLabel("scenario", scenario);
  explainer.AddLabel("merger", merger_name);
  explainer.AddLabel("procedure", "rect");
  explainer.AddLabel("estimator", "uniform");
  if (shards > 1) {
    explainer.AddLabel("shards", std::to_string(shards));
    explainer.AddLabel("assign", assign_name);
    explainer.set_shard_attribution(&group_shard);
    explainer.set_shard_layout(&layout);
  }
  explainer.set_initial_cost(model.InitialCost(*instance.ctx));
  explainer.set_refinement(outcome.bounds_refined, outcome.bounds_pruned);

  // --exact: measure merged sizes against a real table so the EXPLAIN
  // shows the estimator's error per group.
  std::unique_ptr<Table> table;
  std::unique_ptr<GridIndex> index;
  std::unique_ptr<ExactEstimator> exact_estimator;
  std::unique_ptr<MergeContext> exact_ctx;
  if (args.Has("exact")) {
    Rng rng(seed);
    TableGeneratorConfig tconfig;
    tconfig.domain = workload.domain;
    tconfig.num_objects = static_cast<size_t>(args.I("objects", 5000));
    tconfig.clustered_fraction = 0.5;
    table = std::make_unique<Table>(GenerateTable(tconfig, &rng));
    index = std::make_unique<GridIndex>(*table, workload.domain);
    exact_estimator = std::make_unique<ExactEstimator>(index.get());
    exact_ctx = std::make_unique<MergeContext>(
        &instance.queries, exact_estimator.get(), &instance.procedure);
    explainer.set_exact_context(exact_ctx.get());
  }

  const obs::PlanExplain explain = explainer.Explain(outcome.partition);

  const std::string format = args.S("format", "text");
  if (format == "text") {
    std::fputs(explain.ToText().c_str(), stdout);
  } else if (format == "json") {
    std::printf("%s\n", explain.ToJson().c_str());
  } else {
    std::fprintf(stderr, "unknown --format '%s'\n", format.c_str());
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace qsp

int main(int argc, char** argv) {
  const qsp::Args args(argc, argv, 1);
  if (args.Has("help")) {
    std::fputs("see the header of tools/qsp_explain.cc for options\n",
               stderr);
    return 2;
  }
  return qsp::Run(args);
}
