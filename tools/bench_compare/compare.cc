#include "bench_compare/compare.h"

#include <cmath>
#include <cstdio>

#include "util/json_writer.h"

namespace qsp {
namespace benchcmp {

namespace {

void FlattenInto(const JsonValue& value, const std::string& prefix,
                 std::map<std::string, double>* out) {
  if (value.is_number()) {
    (*out)[prefix] = value.AsNumber();
    return;
  }
  if (value.is_object()) {
    for (const auto& [key, child] : value.AsObject()) {
      FlattenInto(child, prefix.empty() ? key : prefix + "." + key, out);
    }
  }
  // Arrays (per-row tables, phase traces) and non-numeric leaves are not
  // gateable scalars; skip them.
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::map<std::string, double> FlattenNumbers(const JsonValue& value) {
  std::map<std::string, double> out;
  FlattenInto(value, "", &out);
  return out;
}

bool IsLatencyMetric(const std::string& path) {
  return path.find("latency_us.") != std::string::npos;
}

bool IsGatedMetric(const std::string& path) {
  return IsLatencyMetric(path) && EndsWith(path, ".mean");
}

CompareResult Compare(const std::map<std::string, double>& baseline,
                      const std::map<std::string, double>& current,
                      const CompareOptions& options) {
  CompareResult result;
  for (const auto& [path, base_value] : baseline) {
    if (!IsGatedMetric(path)) continue;
    const auto it = current.find(path);
    if (it == current.end()) {
      result.only_in_baseline.push_back(path);
      continue;
    }
    MetricDelta delta;
    delta.path = path;
    delta.baseline = base_value;
    delta.current = it->second;
    if (base_value > 0.0) {
      delta.pct_change = 100.0 * (delta.current - base_value) / base_value;
    }
    delta.regression = delta.pct_change > options.threshold_pct;
    if (delta.regression) ++result.num_regressions;
    result.deltas.push_back(std::move(delta));
  }
  for (const auto& [path, value] : current) {
    (void)value;
    if (IsGatedMetric(path) && baseline.find(path) == baseline.end()) {
      result.only_in_current.push_back(path);
    }
  }
  return result;
}

Result<JsonValue> LoadJsonFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  Result<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().ToString());
  }
  return parsed;
}

Result<JsonValue> LoadTrajectory(const std::string& path) {
  Result<JsonValue> loaded = LoadJsonFile(path);
  if (!loaded.ok()) return loaded.status();
  if (!loaded.value().is_array()) {
    return Status::InvalidArgument(path + ": trajectory is not an array");
  }
  return loaded;
}

const JsonValue* FindLastEntry(const JsonValue& trajectory,
                               const std::string& label) {
  if (!trajectory.is_array()) return nullptr;
  const JsonValue* found = nullptr;
  for (const JsonValue& entry : trajectory.AsArray()) {
    const JsonValue* entry_label = entry.Find("label");
    if (entry_label != nullptr && entry_label->is_string() &&
        entry_label->AsString() == label) {
      found = &entry;
    }
  }
  return found;
}

Status AppendTrajectoryEntry(const std::string& path,
                             const std::string& label,
                             const std::map<std::string, double>& metrics,
                             JsonValue* trajectory) {
  JsonValue entry = JsonValue::MakeObject();
  entry.MutableObject().emplace_back("label", JsonValue::MakeString(label));
  JsonValue metrics_node = JsonValue::MakeObject();
  for (const auto& [metric_path, value] : metrics) {
    metrics_node.MutableObject().emplace_back(metric_path,
                                              JsonValue::MakeNumber(value));
  }
  entry.MutableObject().emplace_back("metrics", std::move(metrics_node));
  trajectory->MutableArray().push_back(std::move(entry));

  JsonWriter json;
  json.BeginArray();
  for (const JsonValue& e : trajectory->AsArray()) {
    json.BeginObject();
    const JsonValue* e_label = e.Find("label");
    json.Key("label").String(
        e_label != nullptr && e_label->is_string() ? e_label->AsString()
                                                   : "");
    json.Key("metrics").BeginObject();
    const JsonValue* e_metrics = e.Find("metrics");
    if (e_metrics != nullptr && e_metrics->is_object()) {
      for (const auto& [key, value] : e_metrics->AsObject()) {
        if (value.is_number()) json.Key(key).Number(value.AsNumber());
      }
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::NotFound("cannot write " + path);
  }
  const std::string text = json.str() + "\n";
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  if (written != text.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace benchcmp
}  // namespace qsp
