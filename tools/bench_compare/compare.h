#ifndef QSP_TOOLS_BENCH_COMPARE_COMPARE_H_
#define QSP_TOOLS_BENCH_COMPARE_COMPARE_H_

/// bench_compare — the perf-regression gate (DESIGN.md §10).
///
/// Compares a current scripts/run_benches.sh merged report
/// (bench_report.json) against a baseline and fails on significant
/// latency regressions, while maintaining BENCH_trajectory.json — an
/// append-only JSON array of labeled metric snapshots, one per gate run,
/// that CI keeps as an artifact so the trajectory of every tracked metric
/// across commits is one file.
///
/// Only wall-clock metrics gate (histogram means of *.latency_us):
/// deterministic counters and costs are pinned by tests and goldens
/// elsewhere, and gating them on a percentage threshold would only mask
/// real changes. All latency leaves (mean, percentiles, sum, count) are
/// recorded in the trajectory; only the means decide pass/fail, since
/// tail percentiles of 3-sample bench histograms are pure noise.

#include <map>
#include <string>
#include <vector>

#include "util/json_parser.h"
#include "util/status.h"

namespace qsp {
namespace benchcmp {

/// Flattens every numeric leaf of `value` into dotted paths
/// ("fig15.metrics.histograms.core.plan.latency_us.mean" -> number).
/// Arrays are skipped: per-row tables and phase traces are shapes, not
/// gateable scalars.
std::map<std::string, double> FlattenNumbers(const JsonValue& value);

/// True when `path` names a latency metric worth recording in the
/// trajectory (any *.latency_us leaf).
bool IsLatencyMetric(const std::string& path);

/// True when `path` is one of the leaves that decide pass/fail (the
/// histogram mean of a latency metric).
bool IsGatedMetric(const std::string& path);

struct CompareOptions {
  /// A gated metric regressing by more than this fraction of its
  /// baseline fails the gate.
  double threshold_pct = 25.0;
};

struct MetricDelta {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  /// Percent change relative to baseline (positive = slower).
  double pct_change = 0.0;
  bool regression = false;
};

struct CompareResult {
  /// Every gated metric present on both sides, in path order.
  std::vector<MetricDelta> deltas;
  size_t num_regressions = 0;
  /// Gated metrics present on only one side (renamed/added/removed
  /// benches); reported, never failed on.
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
};

/// Compares flattened metric maps; see CompareOptions.
CompareResult Compare(const std::map<std::string, double>& baseline,
                      const std::map<std::string, double>& current,
                      const CompareOptions& options);

/// Reads and parses a JSON file.
Result<JsonValue> LoadJsonFile(const std::string& path);

/// Loads the trajectory array at `path`. The file must exist and hold a
/// JSON array (the repo seeds it with []).
Result<JsonValue> LoadTrajectory(const std::string& path);

/// The most recent trajectory entry whose "label" matches, or nullptr.
const JsonValue* FindLastEntry(const JsonValue& trajectory,
                               const std::string& label);

/// Appends {"label": label, "metrics": {path: value, ...}} to the
/// trajectory array and rewrites `path` atomically enough for CI
/// (write-whole-file). `metrics` should be the latency subset of a
/// flattened report.
Status AppendTrajectoryEntry(const std::string& path,
                             const std::string& label,
                             const std::map<std::string, double>& metrics,
                             JsonValue* trajectory);

}  // namespace benchcmp
}  // namespace qsp

#endif  // QSP_TOOLS_BENCH_COMPARE_COMPARE_H_
