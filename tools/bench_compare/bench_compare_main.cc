// bench_compare — the perf-regression gate (DESIGN.md §10).
//
//   bench_compare --current bench_report.json
//                 [--baseline FILE]            explicit baseline report
//                 [--trajectory FILE]          [BENCH_trajectory.json]
//                 [--label NAME]               [default]
//                 [--threshold-pct F]          [25]
//                 [--no-append]                compare only
//
// Compares the current merged bench report against a baseline — an
// explicit --baseline report, or else the most recent same-label entry in
// the trajectory file — and appends the current latency metrics to the
// trajectory. With no baseline at all (first ever run) it records and
// exits 0.
//
// Exit codes: 0 ok, 1 regression past the threshold, 2 usage / IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bench_compare/compare.h"

namespace qsp {
namespace benchcmp {
namespace {

int Run(int argc, char** argv) {
  std::string current_path;
  std::string baseline_path;
  std::string trajectory_path = "BENCH_trajectory.json";
  std::string label = "default";
  CompareOptions options;
  bool append = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--current") {
      current_path = value();
    } else if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--trajectory") {
      trajectory_path = value();
    } else if (arg == "--label") {
      label = value();
    } else if (arg == "--threshold-pct") {
      options.threshold_pct = std::atof(value().c_str());
    } else if (arg == "--no-append") {
      append = false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare --current bench_report.json "
                 "[--baseline FILE] [--trajectory FILE] [--label NAME] "
                 "[--threshold-pct F] [--no-append]\n");
    return 2;
  }

  Result<JsonValue> current = LoadJsonFile(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "--current: %s\n",
                 current.status().ToString().c_str());
    return 2;
  }
  const std::map<std::string, double> flattened =
      FlattenNumbers(current.value());
  std::map<std::string, double> latency;
  for (const auto& [path, v] : flattened) {
    if (IsLatencyMetric(path)) latency[path] = v;
  }

  Result<JsonValue> trajectory = LoadTrajectory(trajectory_path);
  if (!trajectory.ok()) {
    std::fprintf(stderr, "--trajectory: %s\n",
                 trajectory.status().ToString().c_str());
    return 2;
  }

  // Resolve the baseline metric map.
  std::map<std::string, double> baseline;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    Result<JsonValue> loaded = LoadJsonFile(baseline_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--baseline: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    baseline = FlattenNumbers(loaded.value());
    have_baseline = true;
  } else {
    const JsonValue* entry = FindLastEntry(trajectory.value(), label);
    if (entry != nullptr) {
      const JsonValue* metrics = entry->Find("metrics");
      if (metrics != nullptr) baseline = FlattenNumbers(*metrics);
      have_baseline = true;
    }
  }

  int exit_code = 0;
  if (have_baseline) {
    const CompareResult result = Compare(baseline, latency, options);
    for (const MetricDelta& delta : result.deltas) {
      std::printf("%s %-60s %12.3f -> %12.3f  (%+.1f%%)\n",
                  delta.regression ? "REGRESSION" : "ok        ",
                  delta.path.c_str(), delta.baseline, delta.current,
                  delta.pct_change);
    }
    for (const std::string& path : result.only_in_baseline) {
      std::printf("gone       %s\n", path.c_str());
    }
    for (const std::string& path : result.only_in_current) {
      std::printf("new        %s\n", path.c_str());
    }
    if (result.num_regressions > 0) {
      std::printf("%zu metric(s) regressed past %.1f%%\n",
                  result.num_regressions, options.threshold_pct);
      exit_code = 1;
    } else {
      std::printf("no regressions past %.1f%% (%zu gated metrics)\n",
                  options.threshold_pct, result.deltas.size());
    }
  } else {
    std::printf("no baseline for label '%s'; recording only\n",
                label.c_str());
  }

  if (append) {
    const Status appended = AppendTrajectoryEntry(
        trajectory_path, label, latency, &trajectory.value());
    if (!appended.ok()) {
      std::fprintf(stderr, "trajectory append: %s\n",
                   appended.ToString().c_str());
      return 2;
    }
    std::printf("appended entry '%s' (%zu metrics) to %s\n", label.c_str(),
                latency.size(), trajectory_path.c_str());
  }
  return exit_code;
}

}  // namespace
}  // namespace benchcmp
}  // namespace qsp

int main(int argc, char** argv) {
  return qsp::benchcmp::Run(argc, argv);
}
