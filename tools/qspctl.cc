// qspctl — command-line driver for the qsp library.
//
//   qspctl workload  [options]   generate a query workload (CSV)
//   qspctl plan      [options]   merge + allocate, print the plan
//   qspctl simulate  [options]   plan, run one round, print traffic
//   qspctl space     --n N [--channels C --clients U]
//                                print search-space sizes (Bell numbers)
//
// Common options (defaults in brackets):
//   --queries N [20]  --clients N [6]   --channels N [1]  --seed N [42]
//   --cf F [0.6]      --sf F [0.5]      --df F [0.03]
//   --min-extent F [0.02]  --max-extent F [0.1]
//   --km F [10] --kt F [9] --ku F [4] --kd F [0] --kcheck F [0]
//   --merger pair|directed|clustering|exact [pair]
//   --procedure rect|polygon|cover [rect]
//   --objects N [5000]  --rounds N [1]  --cache  (simulate only)
//   --subs FILE         read subscriptions from a CSV of
//                       client,x_lo,y_lo,x_hi,y_hi rows (header allowed)
//                       instead of generating a workload (plan only)
//   --csv               (machine-readable output where applicable)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/subscription_service.h"
#include "relation/generator.h"
#include "sim/scenario.h"
#include "util/bell.h"
#include "util/table_printer.h"
#include "workload/subs_io.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// Minimal --key value argument map.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";  // Boolean flag.
      }
    }
  }

  double F(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t I(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  std::string S(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

QueryGenConfig WorkloadConfig(const Args& args) {
  QueryGenConfig config;
  config.domain = Rect(0, 0, 1000, 1000);
  config.num_queries = static_cast<size_t>(args.I("queries", 20));
  config.cf = args.F("cf", 0.6);
  config.sf = args.F("sf", 0.5);
  config.df = args.F("df", 0.03);
  config.min_extent = args.F("min-extent", 0.02);
  config.max_extent = args.F("max-extent", 0.1);
  return config;
}

ServiceConfig ServiceFromArgs(const Args& args) {
  ServiceConfig config;
  // Defaults chosen so merging visibly pays on the default workload
  // (messages expensive relative to per-tuple costs).
  config.cost_model.k_m = args.F("km", 200.0);
  config.cost_model.k_t = args.F("kt", 1.0);
  config.cost_model.k_u = args.F("ku", 0.5);
  config.cost_model.k_d = args.F("kd", 0.0);
  config.cost_model.k_check = args.F("kcheck", 0.0);
  config.num_channels = static_cast<int>(args.I("channels", 1));
  config.seed = static_cast<uint64_t>(args.I("seed", 42));
  config.estimator = EstimatorKind::kExact;

  const std::string merger = args.S("merger", "pair");
  if (merger == "pair") {
    config.merger = MergerKind::kPairMerging;
  } else if (merger == "directed") {
    config.merger = MergerKind::kDirectedSearch;
  } else if (merger == "clustering") {
    config.merger = MergerKind::kClustering;
  } else if (merger == "exact") {
    config.merger = MergerKind::kPartitionExact;
  } else {
    std::fprintf(stderr, "unknown --merger '%s'\n", merger.c_str());
    std::exit(2);
  }
  const std::string procedure = args.S("procedure", "rect");
  if (procedure == "rect") {
    config.procedure = ProcedureKind::kBoundingRect;
  } else if (procedure == "polygon") {
    config.procedure = ProcedureKind::kBoundingPolygon;
  } else if (procedure == "cover") {
    config.procedure = ProcedureKind::kExactCover;
  } else {
    std::fprintf(stderr, "unknown --procedure '%s'\n", procedure.c_str());
    std::exit(2);
  }
  return config;
}

/// Builds a populated service: table + clients + generated subscriptions.
std::unique_ptr<SubscriptionService> BuildService(const Args& args) {
  Rng rng(static_cast<uint64_t>(args.I("seed", 42)));
  const QueryGenConfig qconfig = WorkloadConfig(args);

  TableGeneratorConfig tconfig;
  tconfig.domain = qconfig.domain;
  tconfig.num_objects = static_cast<size_t>(args.I("objects", 5000));
  tconfig.clustered_fraction = 0.5;
  Table table = GenerateTable(tconfig, &rng);

  auto service = std::make_unique<SubscriptionService>(
      std::move(table), qconfig.domain, ServiceFromArgs(args));

  if (args.Has("subs")) {
    auto rows = LoadSubscriptionsCsv(args.S("subs", ""));
    if (!rows.ok()) {
      std::fprintf(stderr, "--subs: %s\n", rows.status().ToString().c_str());
      std::exit(1);
    }
    ClientId max_client = 0;
    for (const SubscriptionRow& row : rows.value()) {
      max_client = std::max(max_client, row.client);
    }
    for (ClientId c = 0; c <= max_client; ++c) service->AddClient();
    for (const SubscriptionRow& row : rows.value()) {
      service->Subscribe(row.client, row.rect);
    }
    return service;
  }

  const auto rects = GenerateQueries(qconfig, &rng);
  const size_t num_clients = static_cast<size_t>(args.I("clients", 6));
  for (size_t c = 0; c < num_clients; ++c) service->AddClient();
  for (size_t i = 0; i < rects.size(); ++i) {
    service->Subscribe(static_cast<ClientId>(i % num_clients), rects[i]);
  }
  return service;
}

int CmdWorkload(const Args& args) {
  Rng rng(static_cast<uint64_t>(args.I("seed", 42)));
  const auto rects = GenerateQueries(WorkloadConfig(args), &rng);
  TablePrinter table({"query", "x_lo", "y_lo", "x_hi", "y_hi", "area"});
  for (size_t i = 0; i < rects.size(); ++i) {
    table.AddNumericRow({static_cast<double>(i), rects[i].x_lo(),
                         rects[i].y_lo(), rects[i].x_hi(), rects[i].y_hi(),
                         rects[i].Area()});
  }
  std::fputs(args.Has("csv") ? table.ToCsv().c_str()
                             : table.ToText().c_str(),
             stdout);
  return 0;
}

int CmdPlan(const Args& args) {
  auto service = BuildService(args);
  auto report = service->Plan();
  if (!report.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("queries         : %zu\n", service->queries().size());
  std::printf("clients         : %zu\n", service->clients().num_clients());
  std::printf("initial cost    : %.2f\n", report->initial_cost);
  std::printf("planned cost    : %.2f (%.1f%% saved)\n",
              report->estimated_cost,
              100.0 * (report->initial_cost - report->estimated_cost) /
                  report->initial_cost);
  std::printf("merged groups   : %zu\n", report->num_groups);
  for (size_t ch = 0; ch < report->plan.allocation.size(); ++ch) {
    std::string clients_str;
    for (ClientId c : report->plan.allocation[ch]) {
      if (!clients_str.empty()) clients_str += ',';
      clients_str += std::to_string(c);
    }
    std::printf("channel %zu       : clients {%s}\n", ch,
                clients_str.c_str());
    for (const QueryGroup& group : report->plan.channel_partitions[ch]) {
      std::printf("  group %s\n", GroupToString(group).c_str());
    }
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  ScenarioConfig scenario;
  scenario.objects.domain = Rect(0, 0, 1000, 1000);
  scenario.objects.num_objects = static_cast<size_t>(args.I("objects", 5000));
  scenario.objects.clustered_fraction = 0.5;
  scenario.workload = WorkloadConfig(args);
  scenario.num_clients = static_cast<size_t>(args.I("clients", 6));
  scenario.service = ServiceFromArgs(args);
  scenario.service.client_cache = args.Has("cache");
  scenario.rounds = static_cast<int>(args.I("rounds", 1));
  scenario.seed = static_cast<uint64_t>(args.I("seed", 42));

  auto result = RunScenario(scenario);
  if (!result.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("planned cost     : %.2f (of initial %.2f)\n",
              result->plan.estimated_cost, result->plan.initial_cost);
  for (size_t r = 0; r < result->rounds.size(); ++r) {
    const RoundStats& stats = result->rounds[r];
    std::printf("-- round %zu --\n", r);
    std::printf("messages         : %zu\n", stats.num_messages);
    std::printf("payload rows     : %zu\n", stats.payload_rows);
    std::printf("payload bytes    : %zu\n", stats.payload_bytes);
    std::printf("header bytes     : %zu\n", stats.header_bytes);
    std::printf("irrelevant rows  : %zu\n", stats.irrelevant_rows);
    std::printf("header checks    : %zu\n", stats.headers_checked);
    std::printf("cache hits       : %zu\n", stats.cache_hits);
    std::printf("channels used    : %zu\n", stats.channels_used);
  }
  std::printf("answers correct  : %s\n",
              result->all_correct ? "yes" : "NO");
  return result->all_correct ? 0 : 1;
}

int CmdSpace(const Args& args) {
  const int n = static_cast<int>(args.I("n", 12));
  std::printf("Bell numbers — query merging search space (Section 6):\n");
  for (int i = 1; i <= n; ++i) {
    std::printf("  B(%2d) = %llu\n", i,
                static_cast<unsigned long long>(BellNumber(i)));
  }
  if (args.Has("clients") || args.Has("channels")) {
    const int clients = static_cast<int>(args.I("clients", 6));
    const int channels = static_cast<int>(args.I("channels", 2));
    std::printf(
        "Allocations of %d clients into <= %d channels (Section 8): "
        "%llu\n",
        clients, channels,
        static_cast<unsigned long long>(
            PartitionsIntoAtMost(clients, channels)));
  }
  return 0;
}

int Usage() {
  std::fputs(
      "usage: qspctl <workload|plan|simulate|space> [--key value ...]\n"
      "run with a command to see its effect; see the header of\n"
      "tools/qspctl.cc for the option list.\n",
      stderr);
  return 2;
}

}  // namespace
}  // namespace qsp

int main(int argc, char** argv) {
  if (argc < 2) return qsp::Usage();
  const std::string command = argv[1];
  const qsp::Args args(argc, argv, 2);
  if (command == "workload") return qsp::CmdWorkload(args);
  if (command == "plan") return qsp::CmdPlan(args);
  if (command == "simulate") return qsp::CmdSimulate(args);
  if (command == "space") return qsp::CmdSpace(args);
  return qsp::Usage();
}
