#ifndef QSP_TOOLS_LINT_AUDIT_H_
#define QSP_TOOLS_LINT_AUDIT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/include_graph.h"
#include "lint/lock_graph.h"

/// qsp_audit orchestration: runs the whole-program analyses (include/layer
/// graph, lock-order graph) over one corpus, applies the shared
/// `// qsp-lint: allow(<rule>) <reason>` suppression syntax, and returns
/// findings in stable (file, line, rule, message) order. The per-file
/// rules stay in qsp_lint; this layer owns everything that needs to see
/// more than one file at a time.
namespace qsp {
namespace lint {

struct AuditResult {
  /// Surviving findings, sorted by (file, line, rule, message).
  std::vector<Finding> findings;
  /// The deduplicated lock-order graph (for --explain dumps and tests).
  std::vector<LockEdge> lock_edges;
  /// Findings silenced by allow markers.
  size_t suppressed = 0;
};

/// Runs every whole-program rule over `files` under the layer spec.
AuditResult RunAudit(const std::vector<SourceFile>& files,
                     const LayerSpec& spec);

}  // namespace lint
}  // namespace qsp

#endif  // QSP_TOOLS_LINT_AUDIT_H_
