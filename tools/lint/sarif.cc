#include "lint/sarif.h"

#include "util/json_writer.h"

namespace qsp {
namespace lint {
namespace {

struct RuleDoc {
  const char* id;
  const char* description;
};

// Every rule qsp_lint or qsp_audit can emit, in catalogue order. SARIF
// results reference rules by id (not index), so the order only affects
// the document, not consumers.
const RuleDoc kRules[] = {
    {"discarded-status",
     "qsp::Status / qsp::Result return value dropped without "
     "QSP_IGNORE_RESULT"},
    {"nondeterminism",
     "wall clock or ambient randomness in library code outside src/obs/"},
    {"unordered-iter",
     "range-for over an unordered container in library code"},
    {"ungated-knob",
     "ServiceConfig knob read outside its gate or outside src/core/"},
    {"library-io", "stdout I/O in library code"},
    {"metric-name",
     "metric or span literal violating the naming convention"},
    {"layer-back-edge",
     "include against the declared layer DAG (lower layer includes a "
     "higher one)"},
    {"layer-undeclared",
     "src/ subsystem missing from docs/layers.conf"},
    {"include-cycle", "cycle in the file-level include graph"},
    {"unused-include",
     "project include contributing no referenced name (dead or "
     "transitive-only)"},
    {"lock-order-cycle",
     "cycle in the inter-procedural lock-order graph (potential deadlock)"},
    {"callback-under-lock",
     "stored std::function invoked while a mutex is held"},
};

}  // namespace

std::string FindingsToSarif(const std::vector<Finding>& findings,
                            const std::string& tool_version) {
  JsonWriter w;
  w.BeginObject();
  w.Key("$schema").String(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  w.Key("version").String("2.1.0");
  w.Key("runs").BeginArray();
  w.BeginObject();
  w.Key("tool").BeginObject();
  w.Key("driver").BeginObject();
  w.Key("name").String("qsp_audit");
  w.Key("version").String(tool_version);
  w.Key("informationUri")
      .String("https://example.invalid/qsp/DESIGN.md#14-whole-program-audit");
  w.Key("rules").BeginArray();
  for (const RuleDoc& rule : kRules) {
    w.BeginObject();
    w.Key("id").String(rule.id);
    w.Key("shortDescription").BeginObject();
    w.Key("text").String(rule.description);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();  // rules
  w.EndObject();  // driver
  w.EndObject();  // tool
  w.Key("results").BeginArray();
  for (const Finding& f : findings) {
    w.BeginObject();
    w.Key("ruleId").String(f.rule);
    w.Key("level").String("error");
    w.Key("message").BeginObject();
    w.Key("text").String(f.message);
    w.EndObject();
    w.Key("locations").BeginArray();
    w.BeginObject();
    w.Key("physicalLocation").BeginObject();
    w.Key("artifactLocation").BeginObject();
    w.Key("uri").String(f.file);
    w.EndObject();
    w.Key("region").BeginObject();
    w.Key("startLine").Int(f.line);
    w.EndObject();
    w.EndObject();  // physicalLocation
    w.EndObject();  // location
    w.EndArray();   // locations
    w.EndObject();  // result
  }
  w.EndArray();   // results
  w.EndObject();  // run
  w.EndArray();   // runs
  w.EndObject();
  return w.str();
}

}  // namespace lint
}  // namespace qsp
