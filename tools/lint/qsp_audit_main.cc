// qsp_audit: whole-program analyzer (see lint/audit.h and DESIGN.md §14).
// Where qsp_lint checks one file at a time, qsp_audit sees the tree: the
// include graph against the declared layer DAG (docs/layers.conf), the
// inter-procedural lock-order graph, and stored-callback invocations
// under locks.
//
// Usage:
//   qsp_audit [--layers <conf>] [--sarif <out.sarif>] [--explain-locks]
//             --root <repo-root> [subdir...]
//
// Subdirs (default: src tools bench) are walked recursively for *.h /
// *.cc under <repo-root>; paths are kept root-relative so include
// resolution and reports are location-independent. `lint_fixtures`
// directories are skipped (they hold deliberately broken corpora). The
// layer spec defaults to <repo-root>/docs/layers.conf. --sarif writes a
// SARIF 2.1.0 report (always, even when clean — CI uploads it either
// way). --explain-locks dumps the deduplicated lock-order graph to
// stdout.
//
// Exit status: 0 clean, 1 findings, 2 usage/I-O/config errors. Findings
// print as `file:line: [rule] message`, deterministically ordered.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/audit.h"
#include "lint/sarif.h"

namespace {

namespace fs = std::filesystem;
using qsp::lint::AuditResult;
using qsp::lint::ClassifyPath;
using qsp::lint::LayerSpec;
using qsp::lint::LockEdge;
using qsp::lint::SourceFile;

constexpr char kVersion[] = "1.0";

bool IsSourcePath(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool ReadWholeFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream contents;
  contents << in.rdbuf();
  *out = contents.str();
  return true;
}

bool CollectTree(const fs::path& root, const std::string& subdir,
                 std::vector<SourceFile>* files) {
  const fs::path base = root / subdir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return true;  // absent subdir is fine
  std::vector<std::string> rel_paths;
  for (fs::recursive_directory_iterator it(base, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory() && it->path().filename() == "lint_fixtures") {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsSourcePath(it->path())) {
      rel_paths.push_back(
          fs::relative(it->path(), root, ec).generic_string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "qsp_audit: error walking %s: %s\n",
                 base.string().c_str(), ec.message().c_str());
    return false;
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  for (const std::string& rel : rel_paths) {
    SourceFile file;
    file.path = rel;
    if (!ReadWholeFile(root / rel, &file.content)) {
      std::fprintf(stderr, "qsp_audit: cannot read %s\n", rel.c_str());
      return false;
    }
    file.kind = ClassifyPath(rel);
    files->push_back(std::move(file));
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: qsp_audit [--layers <conf>] [--sarif <out>] "
               "[--explain-locks] --root <repo-root> [subdir...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root, layers_path, sarif_path;
  bool explain_locks = false;
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--explain-locks") {
      explain_locks = true;
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      subdirs.push_back(arg);
    }
  }
  if (root.empty()) return Usage();
  if (subdirs.empty()) subdirs = {"src", "tools", "bench"};
  if (layers_path.empty())
    layers_path = (fs::path(root) / "docs" / "layers.conf").string();

  std::string layers_text;
  if (!ReadWholeFile(layers_path, &layers_text)) {
    std::fprintf(stderr, "qsp_audit: cannot read layer spec %s\n",
                 layers_path.c_str());
    return 2;
  }
  LayerSpec spec;
  std::string spec_error;
  if (!qsp::lint::ParseLayerSpec(layers_text, &spec, &spec_error)) {
    std::fprintf(stderr, "qsp_audit: bad layer spec %s: %s\n",
                 layers_path.c_str(), spec_error.c_str());
    return 2;
  }

  std::vector<SourceFile> files;
  for (const std::string& subdir : subdirs) {
    if (!CollectTree(root, subdir, &files)) return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "qsp_audit: no sources found under %s\n",
                 root.c_str());
    return 2;
  }

  const AuditResult result = qsp::lint::RunAudit(files, spec);

  if (explain_locks) {
    std::printf("# lock-order graph: %zu edge(s)\n",
                result.lock_edges.size());
    for (const LockEdge& e : result.lock_edges) {
      std::printf("%s -> %s  (%s:%d)\n", e.held.c_str(), e.acquired.c_str(),
                  e.file.c_str(), e.line);
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "qsp_audit: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << qsp::lint::FindingsToSarif(result.findings, kVersion) << "\n";
  }

  for (const qsp::lint::Finding& f : result.findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!result.findings.empty()) {
    std::fprintf(stderr,
                 "qsp_audit: %zu finding(s) in %zu file(s), %zu suppressed\n",
                 result.findings.size(), files.size(), result.suppressed);
    return 1;
  }
  std::fprintf(stderr, "qsp_audit: %zu file(s) clean, %zu suppressed\n",
               files.size(), result.suppressed);
  return 0;
}
