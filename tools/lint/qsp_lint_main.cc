// qsp_lint: project-invariant linter (see lint/lint.h and DESIGN.md §9).
//
// Usage:
//   qsp_lint [--as-library] <file-or-dir>...
//
// Directories are walked recursively for *.h / *.cc files; the directory
// named `lint_fixtures` is skipped unless named explicitly (it holds the
// linter's own known-bad test corpus). Path-scoped rules classify each
// file from its path (src/, src/obs/, everything else); --as-library
// forces library classification for every input, which is how the fixture
// corpus is linted.
//
// Exit status: 0 when the tree is clean, 1 when any rule fired, 2 on
// usage or I/O errors. Findings print as `file:line: [rule] message`, one
// per line, deterministically ordered.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

namespace fs = std::filesystem;
using qsp::lint::ClassifyPath;
using qsp::lint::FileKind;
using qsp::lint::Finding;
using qsp::lint::SourceFile;

bool IsSourcePath(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool LoadFile(const std::string& path, bool as_library,
              std::vector<SourceFile>* files) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "qsp_lint: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  SourceFile file;
  file.path = path;
  file.content = contents.str();
  file.kind = as_library ? FileKind::kLibrary : ClassifyPath(path);
  files->push_back(std::move(file));
  return true;
}

bool CollectInputs(const std::string& arg, bool as_library,
                   std::vector<SourceFile>* files) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    std::vector<std::string> paths;
    for (fs::recursive_directory_iterator it(arg, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && IsSourcePath(it->path())) {
        paths.push_back(it->path().generic_string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "qsp_lint: error walking %s: %s\n", arg.c_str(),
                   ec.message().c_str());
      return false;
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
      if (!LoadFile(path, as_library, files)) return false;
    }
    return true;
  }
  if (fs::is_regular_file(arg, ec)) {
    return LoadFile(arg, as_library, files);
  }
  std::fprintf(stderr, "qsp_lint: no such file or directory: %s\n",
               arg.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_library = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--as-library") {
      as_library = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: qsp_lint [--as-library] <file-or-dir>...\n");
      return 2;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr, "usage: qsp_lint [--as-library] <file-or-dir>...\n");
    return 2;
  }

  std::vector<SourceFile> files;
  for (const std::string& arg : args) {
    if (!CollectInputs(arg, as_library, &files)) return 2;
  }

  const std::vector<Finding> findings = qsp::lint::LintFiles(files);
  for (const Finding& finding : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(), finding.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "qsp_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), files.size());
    return 1;
  }
  std::fprintf(stderr, "qsp_lint: %zu file(s) clean\n", files.size());
  return 0;
}
