#ifndef QSP_TOOLS_LINT_SARIF_H_
#define QSP_TOOLS_LINT_SARIF_H_

#include <string>
#include <vector>

#include "lint/lint.h"

/// SARIF 2.1.0 output for qsp_audit, so CI can upload findings where code
/// hosts render them inline on the PR diff. One run, one tool (driver
/// "qsp_audit"), one result per finding; the rule catalogue under
/// tool.driver.rules carries a short description for every rule either
/// analyzer can emit. Written with qsp::JsonWriter and kept minimal —
/// exactly the fields the SARIF viewers need: ruleId, level, message.text,
/// and a physicalLocation with artifactLocation.uri plus region.startLine.
namespace qsp {
namespace lint {

/// Serializes findings as a SARIF 2.1.0 document (compact, one line).
/// `tool_version` lands in tool.driver.version. Findings are emitted in
/// the order given; every finding is level "error" (the audit gate treats
/// any finding as failure).
std::string FindingsToSarif(const std::vector<Finding>& findings,
                            const std::string& tool_version);

}  // namespace lint
}  // namespace qsp

#endif  // QSP_TOOLS_LINT_SARIF_H_
