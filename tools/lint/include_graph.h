#ifndef QSP_TOOLS_LINT_INCLUDE_GRAPH_H_
#define QSP_TOOLS_LINT_INCLUDE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

/// Whole-program include analysis for qsp_audit (DESIGN.md §14): parses
/// every `#include "..."` in the corpus once, resolves them against the
/// corpus itself, and enforces the declared layer DAG plus structural
/// include hygiene.
///
/// Rules (ids are what suppression comments name):
///   layer-back-edge    A file in src/<A>/ includes a header in src/<B>/
///                      where the layer spec ranks B strictly above A.
///                      Layers with equal rank are peers and may
///                      interdepend (acyclically — include-cycle still
///                      applies); crosscut layers (obs, exec) are exempt
///                      in both directions.
///   layer-undeclared   A file lives in a src/ subsystem that the layer
///                      spec does not declare. New subsystems must take a
///                      position in docs/layers.conf before CI goes
///                      green.
///   include-cycle      The file-level include graph has a cycle. One
///                      finding per cycle, reported at the
///                      lexicographically first member's edge into the
///                      cycle.
///   unused-include     A project include whose header contributes no
///                      name the including file references: either dead
///                      weight, or (when only names from the header's own
///                      transitive includes are used) a transitive-only
///                      include that should name its real provider.
namespace qsp {
namespace lint {

/// The declared layering, parsed from docs/layers.conf. Ranks order the
/// layers bottom (0) up; equal ranks are peer layers.
struct LayerSpec {
  std::map<std::string, int> rank;
  std::set<std::string> crosscut;

  bool declared(const std::string& layer) const {
    return rank.count(layer) > 0 || crosscut.count(layer) > 0;
  }
};

/// Parses the layer config. Grammar, one directive per line:
///   layer <name> <rank>     # declares a layer at a rank
///   crosscut <name>         # declares a cross-cutting layer
/// '#' starts a comment; blank lines are skipped. Returns false and
/// fills *error on malformed input (unknown directive, duplicate layer,
/// non-numeric rank).
bool ParseLayerSpec(const std::string& content, LayerSpec* spec,
                    std::string* error);

/// One `#include "..."` directive.
struct IncludeEdge {
  std::string from;    // corpus path of the including file
  std::string target;  // include string as written
  std::string to;      // resolved corpus path; empty when unresolved
  int line = 0;        // 1-based line of the directive
};

/// Extracts project-form (quoted) includes from a file's stripped
/// content and resolves each against the corpus paths: an include "X" in
/// file F tries src/X, tools/X, X, bench/X, then dir(F)/X. System
/// (<...>) includes never appear. Exposed for tests.
std::vector<IncludeEdge> ExtractIncludes(
    const SourceFile& file, const std::set<std::string>& corpus_paths);

/// The src/ subsystem of a corpus path ("src/geom/rect.h" -> "geom");
/// empty for paths outside src/.
std::string LayerOf(const std::string& path);

/// Runs every include rule over the corpus. Findings are unsuppressed
/// and unsorted; audit.cc applies the allow markers and the global
/// ordering.
std::vector<Finding> AuditIncludes(const std::vector<SourceFile>& files,
                                   const LayerSpec& spec);

}  // namespace lint
}  // namespace qsp

#endif  // QSP_TOOLS_LINT_INCLUDE_GRAPH_H_
