#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

namespace qsp {
namespace lint {

namespace text {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

bool WordAt(const std::string& s, size_t pos, const std::string& word) {
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsWordChar(s[pos - 1])) return false;
  const size_t end = pos + word.size();
  return end >= s.size() || !IsWordChar(s[end]);
}

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() && IsSpace(s[pos])) ++pos;
  return pos;
}

std::string ReadIdent(const std::string& s, size_t pos) {
  size_t end = pos;
  while (end < s.size() && IsWordChar(s[end])) ++end;
  if (end == pos || std::isdigit(static_cast<unsigned char>(s[pos])) != 0) {
    return std::string();
  }
  return s.substr(pos, end - pos);
}

int LineOf(const std::string& s, size_t pos) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

}  // namespace text

namespace {

using text::IsSpace;
using text::IsWordChar;
using text::LineOf;
using text::ReadIdent;
using text::SkipSpaces;
using text::WordAt;

/// Skips a balanced template-argument list starting at the '<' at `pos`;
/// returns the offset one past the matching '>'. Understands '>>' closing
/// two levels and ignores '->'. Returns pos on mismatch (caller bails).
size_t SkipAngles(const std::string& s, size_t pos) {
  int depth = 0;
  size_t i = pos;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (i > 0 && s[i - 1] == '-') {
        ++i;
        continue;  // '->' inside a decltype or similar.
      }
      --depth;
      if (depth == 0) return i + 1;
    } else if (c == ';' || c == '{') {
      return pos;  // Ran off the declaration; not a template list.
    }
    ++i;
  }
  return pos;
}

const char* const kStatementKeywords[] = {
    "if",      "else",    "for",      "while",   "do",        "switch",
    "case",    "return",  "break",    "continue", "goto",     "throw",
    "new",     "delete",  "using",    "namespace", "template", "typedef",
    "public",  "private", "protected", "static_assert", "extern", "class",
    "struct",  "enum",    "union",    "friend",   "operator", "co_return",
    "co_await", "sizeof", "default",
};

bool IsStatementKeyword(const std::string& word) {
  for (const char* kw : kStatementKeywords) {
    if (word == kw) return true;
  }
  return false;
}

}  // namespace

std::map<int, std::set<std::string>> CollectAllowMarkers(
    const std::string& raw) {
  std::map<int, std::set<std::string>> allows;
  int line = 1;
  size_t pos = 0;
  while (pos < raw.size()) {
    const size_t eol = raw.find('\n', pos);
    const size_t end = eol == std::string::npos ? raw.size() : eol;
    const size_t marker = raw.find("qsp-lint: allow(", pos);
    if (marker != std::string::npos && marker < end) {
      const size_t open = marker + std::string("qsp-lint: allow(").size();
      const size_t close = raw.find(')', open);
      if (close != std::string::npos && close < end) {
        std::string rules = raw.substr(open, close - open);
        size_t start = 0;
        while (start < rules.size()) {
          size_t comma = rules.find(',', start);
          if (comma == std::string::npos) comma = rules.size();
          std::string rule = rules.substr(start, comma - start);
          rule.erase(std::remove_if(rule.begin(), rule.end(), IsSpace),
                     rule.end());
          if (!rule.empty()) allows[line].insert(rule);
          start = comma + 1;
        }
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++line;
  }
  return allows;
}

namespace {

/// Shared per-file scanning state.
struct FileScan {
  const SourceFile* file = nullptr;
  std::string stripped;
  std::map<int, std::set<std::string>> allows;
  std::vector<Finding>* findings = nullptr;

  bool Allowed(int line, const std::string& rule) const {
    auto it = allows.find(line);
    return it != allows.end() && it->second.count(rule) > 0;
  }

  void Report(size_t pos, const std::string& rule,
              const std::string& message) const {
    const int line = LineOf(stripped, pos);
    if (Allowed(line, rule)) return;
    findings->push_back(Finding{file->path, line, rule, message});
  }
};

/// --------------------------------------------------- rule: discarded-status

/// Parses a member-access call chain candidate ending at the first '(' of
/// `text` (offsets relative to `text`): the identifier directly before the
/// paren, reachable from the start through only identifiers, '.', '->',
/// '::', and whitespace. Returns empty when the shape does not match (a
/// declaration, an assignment, a keyword, ...).
std::string CallChainCandidate(const std::string& text, size_t* ident_offset) {
  const size_t paren = text.find('(');
  if (paren == std::string::npos) return std::string();
  // Identifier directly before the paren.
  size_t end = paren;
  while (end > 0 && IsSpace(text[end - 1])) --end;
  size_t start = end;
  while (start > 0 && IsWordChar(text[start - 1])) --start;
  if (start == end) return std::string();
  const std::string candidate = text.substr(start, end - start);
  if (IsStatementKeyword(candidate)) return std::string();
  // The prefix must be a pure member-access chain: `a.b->c::`.
  for (size_t i = 0; i < start; ++i) {
    const char c = text[i];
    if (IsWordChar(c) || IsSpace(c) || c == '.' || c == ':') continue;
    if (c == '-' && i + 1 < start && text[i + 1] == '>') continue;
    if (c == '>' && i > 0 && text[i - 1] == '-') continue;
    return std::string();
  }
  // ... and must not smuggle in a keyword: `return Status::OK(` is a
  // return statement, not a discarded call.
  for (size_t i = 0; i < start;) {
    if (!IsWordChar(text[i])) {
      ++i;
      continue;
    }
    size_t end_tok = i;
    while (end_tok < start && IsWordChar(text[end_tok])) ++end_tok;
    if (IsStatementKeyword(text.substr(i, end_tok - i))) return std::string();
    i = end_tok;
  }
  // A prefix ending in a bare identifier (`Status Foo(`) is a declaration,
  // not a call chain; require it to end with an access operator.
  size_t p = start;
  while (p > 0 && IsSpace(text[p - 1])) --p;
  if (p > 0) {
    const char c = text[p - 1];
    if (c != '.' && c != ':' && c != '>') return std::string();
  }
  *ident_offset = start;
  return candidate;
}

void CheckDiscardedStatus(const FileScan& scan,
                          const std::set<std::string>& returners) {
  const std::string& s = scan.stripped;
  static const std::string kRule = "discarded-status";

  // (a) Bare expression statements. A statement runs from the previous
  // ';', '{', or '}' to the next one; only ';'-terminated statements are
  // expression statements.
  size_t stmt_begin = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    const char c = i < s.size() ? s[i] : ';';
    if (c != ';' && c != '{' && c != '}') continue;
    if (c == ';') {
      const size_t begin = SkipSpaces(s, stmt_begin);
      if (begin < i && s[begin] != '#') {
        const std::string stmt = s.substr(begin, i - begin);
        size_t ident_offset = 0;
        const std::string candidate = CallChainCandidate(stmt, &ident_offset);
        if (!candidate.empty() && returners.count(candidate) > 0) {
          scan.Report(begin + ident_offset, kRule,
                      "result of '" + candidate +
                          "' (returns qsp::Status/Result) is discarded; "
                          "handle it or mark the drop with "
                          "QSP_IGNORE_RESULT(...)");
        }
      }
    }
    stmt_begin = i + 1;
  }

  // (b) Laundering through a void cast. QSP_IGNORE_RESULT is the blessed
  // spelling; a raw cast hides the drop from grep.
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    size_t expr = std::string::npos;
    if (s[i] == '(' ) {
      size_t j = SkipSpaces(s, i + 1);
      if (WordAt(s, j, "void")) {
        j = SkipSpaces(s, j + 4);
        if (j < s.size() && s[j] == ')') expr = SkipSpaces(s, j + 1);
      }
    } else if (WordAt(s, i, "static_cast")) {
      size_t j = SkipSpaces(s, i + std::string("static_cast").size());
      if (j < s.size() && s[j] == '<') {
        j = SkipSpaces(s, j + 1);
        if (WordAt(s, j, "void")) {
          j = SkipSpaces(s, j + 4);
          if (j < s.size() && s[j] == '>') {
            j = SkipSpaces(s, j + 1);
            if (j < s.size() && s[j] == '(') expr = SkipSpaces(s, j + 1);
          }
        }
      }
    }
    if (expr == std::string::npos || expr >= s.size()) continue;
    // The cast operand up to the end of its (sub)statement.
    const size_t stop = s.find_first_of(";{}", expr);
    const std::string operand =
        s.substr(expr, (stop == std::string::npos ? s.size() : stop) - expr);
    size_t ident_offset = 0;
    const std::string candidate = CallChainCandidate(operand, &ident_offset);
    if (candidate.empty() || returners.count(candidate) == 0) continue;
    // QSP_IGNORE_RESULT itself expands to static_cast<void>; a call site
    // spelled through the macro carries the macro name on the same raw
    // line, which is the sanctioned form. (The macro's own definition in
    // util/status.h casts `expr`, never a real returner name, so it can
    // not reach this point either.)
    const int line = LineOf(s, expr);
    const std::string& raw = scan.file->content;
    size_t raw_pos = 0;
    for (int cur = 1; cur < line && raw_pos < raw.size(); ++raw_pos) {
      if (raw[raw_pos] == '\n') ++cur;
    }
    size_t raw_eol = raw.find('\n', raw_pos);
    if (raw_eol == std::string::npos) raw_eol = raw.size();
    if (raw.substr(raw_pos, raw_eol - raw_pos).find("QSP_IGNORE_RESULT") !=
        std::string::npos) {
      continue;
    }
    scan.Report(expr, kRule,
                "'" + candidate +
                    "' returns qsp::Status/Result; discarding through a raw "
                    "void cast hides the drop — use QSP_IGNORE_RESULT(...)");
  }
}

/// ----------------------------------------------------- rule: nondeterminism

void CheckNondeterminism(const FileScan& scan) {
  static const std::string kRule = "nondeterminism";
  const std::string& s = scan.stripped;
  static const char* const kBannedCalls[] = {
      "rand", "srand", "time", "clock", "gettimeofday", "timespec_get",
  };
  for (const char* fn : kBannedCalls) {
    const std::string name(fn);
    size_t pos = 0;
    while ((pos = s.find(name, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += name.size();
      if (!WordAt(s, here, name)) continue;
      const size_t after = SkipSpaces(s, here + name.size());
      if (after >= s.size() || s[after] != '(') continue;
      scan.Report(here, kRule,
                  "'" + name +
                      "()' is a nondeterminism source; library code must "
                      "draw randomness from a seeded qsp::Rng and must not "
                      "read wall clocks outside src/obs/");
    }
  }
  // std::random_device: nondeterministic by definition.
  size_t pos = 0;
  while ((pos = s.find("random_device", pos)) != std::string::npos) {
    const size_t here = pos;
    pos += std::string("random_device").size();
    if (!WordAt(s, here, "random_device")) continue;
    scan.Report(here, kRule,
                "std::random_device is a nondeterminism source; seed a "
                "qsp::Rng from configuration instead");
  }
  // <chrono> clock reads: any `<something>clock::now(`.
  pos = 0;
  while ((pos = s.find("::", pos)) != std::string::npos) {
    const size_t sep = pos;
    pos += 2;
    size_t after = SkipSpaces(s, sep + 2);
    if (!WordAt(s, after, "now")) continue;
    const size_t call = SkipSpaces(s, after + 3);
    if (call >= s.size() || s[call] != '(') continue;
    // Identifier before '::' must end in "clock".
    size_t end = sep;
    while (end > 0 && IsSpace(s[end - 1])) --end;
    size_t start = end;
    while (start > 0 && IsWordChar(s[start - 1])) --start;
    const std::string owner = s.substr(start, end - start);
    if (owner.size() < 5 || owner.compare(owner.size() - 5, 5, "clock") != 0) {
      continue;
    }
    scan.Report(start, kRule,
                "'" + owner +
                    "::now()' reads a wall clock; timing belongs to the "
                    "qsp::obs layer (src/obs/), not library code");
  }
}

/// ----------------------------------------------------- rule: unordered-iter

void CheckUnorderedIteration(const FileScan& scan) {
  static const std::string kRule = "unordered-iter";
  const std::string& s = scan.stripped;
  static const char* const kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset",
  };
  // Names declared with an unordered container type in this file.
  std::set<std::string> unordered_names;
  for (const char* type : kTypes) {
    const std::string name(type);
    size_t pos = 0;
    while ((pos = s.find(name, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += name.size();
      if (!WordAt(s, here, name)) continue;
      size_t j = SkipSpaces(s, here + name.size());
      if (j >= s.size() || s[j] != '<') continue;
      const size_t past = SkipAngles(s, j);
      if (past == j) continue;
      j = SkipSpaces(s, past);
      while (j < s.size() && (s[j] == '&' || s[j] == '*')) j = SkipSpaces(s, j + 1);
      const std::string ident = ReadIdent(s, j);
      if (!ident.empty()) unordered_names.insert(ident);
    }
  }
  if (unordered_names.empty()) return;

  // Range-fors whose range expression names one of them.
  size_t pos = 0;
  while ((pos = s.find("for", pos)) != std::string::npos) {
    const size_t here = pos;
    pos += 3;
    if (!WordAt(s, here, "for")) continue;
    size_t open = SkipSpaces(s, here + 3);
    if (open >= s.size() || s[open] != '(') continue;
    // Find the ':' of a range-for at paren depth 1 ('::' excluded).
    int depth = 0;
    size_t colon = std::string::npos;
    size_t close = std::string::npos;
    for (size_t i = open; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool dbl = (i + 1 < s.size() && s[i + 1] == ':') ||
                         (i > 0 && s[i - 1] == ':');
        if (!dbl) colon = i;
      }
      if (c == ';') break;  // Classic three-clause for.
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = s.substr(colon + 1, close - colon - 1);
    for (size_t i = 0; i < range.size();) {
      if (!IsWordChar(range[i])) {
        ++i;
        continue;
      }
      size_t end = i;
      while (end < range.size() && IsWordChar(range[end])) ++end;
      const std::string word = range.substr(i, end - i);
      if (unordered_names.count(word) > 0) {
        scan.Report(colon + 1 + i, kRule,
                    "range-for over unordered container '" + word +
                        "': iteration order is unspecified and must never "
                        "feed a planner decision; iterate a sorted copy or "
                        "an ordered index");
        break;
      }
      i = end;
    }
  }
}

/// ------------------------------------------------------- rule: ungated-knob

void CheckUngatedKnobs(const FileScan& scan) {
  static const std::string kRule = "ungated-knob";
  const std::string& s = scan.stripped;
  static const char* const kConfigNames[] = {"config", "config_", "cfg"};
  static const char* const kKnobs[] = {
      "fault", "telemetry", "pruning", "client_cache", "threads",
  };
  const bool in_core = scan.file->path.find("src/core/") != std::string::npos ||
                       scan.file->path.rfind("core/", 0) == 0;
  const bool has_gate = s.find("Engaged") != std::string::npos;

  for (const char* cfg : kConfigNames) {
    const std::string base(cfg);
    size_t pos = 0;
    while ((pos = s.find(base, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += base.size();
      if (!WordAt(s, here, base)) continue;
      size_t j = SkipSpaces(s, here + base.size());
      if (j >= s.size() || s[j] != '.') continue;
      j = SkipSpaces(s, j + 1);
      const std::string member = ReadIdent(s, j);
      bool is_knob = false;
      for (const char* knob : kKnobs) is_knob = is_knob || member == knob;
      if (!is_knob) continue;
      size_t after = SkipSpaces(s, j + member.size());

      // Writes configure the knob; only reads must be gated.
      const bool is_write = after < s.size() && s[after] == '=' &&
                            (after + 1 >= s.size() || s[after + 1] != '=');
      if (is_write) continue;

      if (member == "fault" && after < s.size() && s[after] == '.') {
        // Reading a FaultPolicy field through the config: legal only in a
        // file that also consults the Engaged() gate. Writes configure
        // the policy and are always fine.
        const size_t f = SkipSpaces(s, after + 1);
        const std::string field = ReadIdent(s, f);
        const size_t fa = SkipSpaces(s, f + field.size());
        const bool field_write = fa < s.size() && s[fa] == '=' &&
                                 (fa + 1 >= s.size() || s[fa + 1] != '=');
        if (field_write) continue;
        if (field != "Engaged" && !has_gate) {
          scan.Report(here, kRule,
                      "reads ServiceConfig::fault." + field +
                          " without consulting FaultPolicy::Engaged(); the "
                          "kill switch must gate every use of the knob");
        }
        continue;
      }
      if (!in_core) {
        scan.Report(here, kRule,
                    "ServiceConfig::" + member +
                        " read outside src/core/; feature knobs are "
                        "resolved once at the service boundary and passed "
                        "down as plain values");
      }
    }
  }
}

/// --------------------------------------------------------- rule: library-io

void CheckLibraryIo(const FileScan& scan) {
  static const std::string kRule = "library-io";
  const std::string& s = scan.stripped;
  size_t pos = 0;
  while ((pos = s.find("cout", pos)) != std::string::npos) {
    const size_t here = pos;
    pos += 4;
    if (!WordAt(s, here, "cout")) continue;
    scan.Report(here, kRule,
                "std::cout in library code; output goes through qsp::obs "
                "or the table printers (benches and tools own stdout)");
  }
  static const char* const kBannedIo[] = {"printf", "puts", "putchar"};
  for (const char* fn : kBannedIo) {
    const std::string name(fn);
    pos = 0;
    while ((pos = s.find(name, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += name.size();
      if (!WordAt(s, here, name)) continue;
      const size_t after = SkipSpaces(s, here + name.size());
      if (after >= s.size() || s[after] != '(') continue;
      scan.Report(here, kRule,
                  "'" + name +
                      "()' writes to stdout from library code; use "
                      "qsp::obs, a table printer, or fprintf(stderr, ...) "
                      "for fatal diagnostics");
    }
  }
}

/// -------------------------------------------------------- rule: metric-name

bool IsLowerAlnumSegChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '-';
}

/// `subsystem.noun[.verb[.qualifier]]`: 2..4 dot-separated segments of
/// [a-z0-9_-]; the first segment starts with a letter, later segments may
/// start with a digit (p50-style leaves).
bool ValidMetricName(const std::string& name) {
  size_t segments = 0;
  size_t i = 0;
  while (true) {
    const size_t start = i;
    while (i < name.size() && name[i] != '.') ++i;
    if (i == start) return false;  // Empty segment.
    const char first = name[start];
    if (segments == 0 && !(first >= 'a' && first <= 'z')) return false;
    for (size_t j = start; j < i; ++j) {
      if (!IsLowerAlnumSegChar(name[j])) return false;
    }
    ++segments;
    if (i == name.size()) break;
    ++i;  // Skip the dot.
  }
  return segments >= 2 && segments <= 4;
}

/// Span names are slash-separated lowercase segments ("plan",
/// "broadcast/ch3"). `concatenated` marks a literal that is only the
/// prefix of a runtime-built name ("retx" + std::to_string(n)), where a
/// trailing '/' or partial segment is fine.
bool ValidSpanName(const std::string& name, bool concatenated) {
  if (name.empty()) return false;
  if (!(name[0] >= 'a' && name[0] <= 'z')) return false;
  for (char c : name) {
    if (!IsLowerAlnumSegChar(c) && c != '/') return false;
  }
  if (!concatenated && (name.back() == '/' || name.find("//") != std::string::npos)) {
    return false;
  }
  return true;
}

struct ObsApi {
  const char* name;
  bool is_span;      // Span convention instead of metric convention.
  bool needs_member; // Must be reached via '.'/'->' (registry accessors).
  bool needs_scope;  // Must be reached via '::' (free functions).
};

void CheckMetricNames(const FileScan& scan) {
  static const std::string kRule = "metric-name";
  const std::string& s = scan.stripped;
  const std::string& raw = scan.file->content;
  static const ObsApi kApis[] = {
      {"Count", false, false, true},     {"SetGauge", false, false, true},
      {"Observe", false, false, true},   {"ScopedTimer", false, false, false},
      {"counter", false, true, false},   {"gauge", false, true, false},
      {"histogram", false, true, false}, {"ScopedSpan", true, false, false},
      {"Begin", true, true, false},
  };
  for (const ObsApi& api : kApis) {
    const std::string name(api.name);
    size_t pos = 0;
    while ((pos = s.find(name, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += name.size();
      if (!WordAt(s, here, name)) continue;
      if (api.needs_member || api.needs_scope) {
        size_t before = here;
        while (before > 0 && IsSpace(s[before - 1])) --before;
        if (before == 0) continue;
        const char prev = s[before - 1];
        if (api.needs_member && prev != '.' && prev != '>') continue;
        if (api.needs_scope && prev != ':') continue;
      }
      size_t j = SkipSpaces(s, here + name.size());
      // ScopedTimer/ScopedSpan are types: allow `ScopedTimer t("...")`.
      if (!api.needs_member && !api.needs_scope) {
        const std::string var = ReadIdent(s, j);
        if (!var.empty()) j = SkipSpaces(s, j + var.size());
      }
      if (j >= s.size() || s[j] != '(') continue;
      // The stripped text blanks literals to spaces (offsets preserved),
      // so skip whitespace in the RAW content — where the quote survives.
      j = SkipSpaces(raw, j + 1);
      if (j >= raw.size() || raw[j] != '"') continue;  // Dynamic name.
      size_t end = j + 1;
      std::string literal;
      while (end < raw.size() && raw[end] != '"') {
        if (raw[end] == '\\') ++end;
        if (end < raw.size()) literal += raw[end];
        ++end;
      }
      size_t after = SkipSpaces(raw, end + 1);
      const bool concatenated = after < raw.size() && raw[after] == '+';
      const bool valid = api.is_span
                             ? ValidSpanName(literal, concatenated)
                             : (ValidMetricName(literal) && !concatenated);
      if (!valid) {
        scan.Report(
            j, kRule,
            "'" + literal + "' passed to " + name +
                (api.is_span
                     ? " is not a valid span name (lowercase "
                       "slash-separated segments, e.g. \"broadcast/ch3\")"
                     : " is not a valid metric name (lowercase "
                       "subsystem.noun[.verb] with 2..4 dot segments, "
                       "e.g. \"merge.pair-merging.runs\")"));
      }
    }
  }
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

FileKind ClassifyPath(const std::string& path) {
  const auto contains = [&path](const char* needle) {
    return path.find(needle) != std::string::npos;
  };
  const auto starts_with = [&path](const char* prefix) {
    return path.rfind(prefix, 0) == 0;
  };
  if (contains("src/obs/") || starts_with("obs/")) return FileKind::kLibraryObs;
  if (contains("/src/") || starts_with("src/")) return FileKind::kLibrary;
  if (contains("/bench/") || starts_with("bench/")) return FileKind::kBench;
  if (contains("/scripts/") || starts_with("scripts/")) return FileKind::kScript;
  return FileKind::kOther;
}

std::set<std::string> CollectStatusReturners(
    const std::vector<SourceFile>& files) {
  // Without an AST the linter cannot resolve a call's receiver type, so a
  // name only counts as a Status-returner when every declaration of it in
  // the scanned tree returns Status/Result. Names that are ambiguous
  // (SpatialGrid::Insert returns void, Table::Insert returns Result) are
  // demoted and left to the compiler's [[nodiscard]] backstop.
  std::set<std::string> returners;
  std::set<std::string> demoted;
  for (const SourceFile& file : files) {
    const std::string s = StripCommentsAndStrings(file.content);
    for (size_t i = 0; i < s.size(); ++i) {
      if (!IsWordChar(s[i]) || (i > 0 && IsWordChar(s[i - 1]))) continue;
      const std::string name = ReadIdent(s, i);
      if (name.empty() || IsStatementKeyword(name)) continue;
      const size_t paren = SkipSpaces(s, i + name.size());
      if (paren >= s.size() || s[paren] != '(') continue;
      // Walk back over `& * &&` and whitespace to the return-type token.
      size_t back = i;
      while (back > 0 && (IsSpace(s[back - 1]) || s[back - 1] == '&' ||
                          s[back - 1] == '*')) {
        --back;
      }
      if (back == 0) continue;
      if (s[back - 1] == '>') {
        // Template return type: find the word owning the '<...>' list.
        int depth = 0;
        size_t j = back;
        while (j > 0) {
          --j;
          if (s[j] == '>') ++depth;
          if (s[j] == '<') {
            --depth;
            if (depth == 0) break;
          }
        }
        size_t type_end = j;
        while (type_end > 0 && IsSpace(s[type_end - 1])) --type_end;
        size_t type_start = type_end;
        while (type_start > 0 && IsWordChar(s[type_start - 1])) --type_start;
        const std::string type = s.substr(type_start, type_end - type_start);
        if (type == "Result") {
          returners.insert(name);
        } else if (!type.empty()) {
          demoted.insert(name);
        }
      } else if (IsWordChar(s[back - 1])) {
        size_t type_start = back;
        while (type_start > 0 && IsWordChar(s[type_start - 1])) --type_start;
        const std::string type = s.substr(type_start, back - type_start);
        if (type == "Status") {
          returners.insert(name);
        } else if (!IsStatementKeyword(type) && type != "const" &&
                   type != "constexpr" && type != "inline" &&
                   type != "static" && type != "virtual" &&
                   type != "explicit" && type != "typename") {
          // `void Insert(`, `double Cost(`, ... — a declaration of `name`
          // with a non-Status return type.
          demoted.insert(name);
        }
      }
    }
  }
  std::set<std::string> unambiguous;
  for (const std::string& name : returners) {
    if (demoted.count(name) == 0) unambiguous.insert(name);
  }
  return unambiguous;
}

std::vector<Finding> LintFile(const SourceFile& file,
                              const std::set<std::string>& status_returners) {
  std::vector<Finding> findings;
  FileScan scan;
  scan.file = &file;
  scan.stripped = StripCommentsAndStrings(file.content);
  scan.allows = CollectAllowMarkers(file.content);
  scan.findings = &findings;

  // discarded-status applies everywhere: a dropped Status in a test or
  // bench is exactly as silent as one in the library.
  CheckDiscardedStatus(scan, status_returners);

  const bool library =
      file.kind == FileKind::kLibrary || file.kind == FileKind::kLibraryObs;
  if (library) {
    if (file.kind != FileKind::kLibraryObs) CheckNondeterminism(scan);
    CheckUnorderedIteration(scan);
    CheckUngatedKnobs(scan);
    CheckLibraryIo(scan);
    CheckMetricNames(scan);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> LintFiles(const std::vector<SourceFile>& files) {
  const std::set<std::string> returners = CollectStatusReturners(files);
  std::vector<Finding> all;
  for (const SourceFile& file : files) {
    std::vector<Finding> findings = LintFile(file, returners);
    all.insert(all.end(), findings.begin(), findings.end());
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return all;
}

}  // namespace lint
}  // namespace qsp
