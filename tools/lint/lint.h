#ifndef QSP_TOOLS_LINT_LINT_H_
#define QSP_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

/// qsp_lint: a token-level linter for project invariants that clang-tidy
/// and the compiler wall cannot know (DESIGN.md §9). It deliberately has
/// no libclang dependency — rules work on comment- and string-stripped
/// source text, which keeps the tool buildable everywhere the library is
/// and fast enough to run as a ctest over the whole tree.
///
/// Rules (ids are what suppression comments name):
///   discarded-status   A call returning qsp::Status / qsp::Result<T> as
///                      a bare expression statement, or laundered through
///                      a raw (void)/static_cast<void> cast. The one
///                      sanctioned spelling for an intentional drop is
///                      QSP_IGNORE_RESULT (util/status.h).
///   nondeterminism     rand()/srand(), std::random_device, time()/
///                      clock()/gettimeofday(), and *_clock::now() in
///                      library code outside src/obs/. The planner must
///                      be bit-deterministic under a fixed seed; wall
///                      clocks live in the telemetry layer only.
///   unordered-iter     Range-for over a std::unordered_{map,set}
///                      declared in the same file, in library code.
///                      Unordered iteration order feeding a planner
///                      decision silently breaks run-to-run determinism.
///   ungated-knob       ServiceConfig feature knobs read outside their
///                      gate: `.fault.<field>` without FaultPolicy::
///                      Engaged() in the same file, or any knob read
///                      (telemetry/pruning/client_cache/threads/fault)
///                      outside src/core/ — knobs are resolved once at
///                      the service boundary and passed down as plain
///                      values.
///   library-io         std::cout / printf / puts in library code.
///                      Library output goes through qsp::obs or the
///                      table printers; stderr (fprintf/std::cerr) stays
///                      available for fatal diagnostics.
///   metric-name        A string literal handed to the qsp::obs API
///                      (obs::Count/SetGauge/Observe, ScopedTimer,
///                      registry .counter/.gauge/.histogram) that does
///                      not follow the metric naming convention:
///                      lowercase `subsystem.noun[.verb[.qualifier]]` —
///                      2..4 dot-separated segments of [a-z0-9_-], the
///                      first starting with a letter. Span names
///                      (ScopedSpan, PhaseTracer .Begin) are
///                      slash-separated lowercase segments instead
///                      ("plan", "broadcast/ch3"). Dynamic (non-literal)
///                      names are not checked. Library code only — the
///                      exporters key on these names forever, so they
///                      must be born well-formed.
///
/// Suppression: a line containing `// qsp-lint: allow(<rule>) <reason>`
/// silences that rule on that line. The reason is mandatory by
/// convention and enforced in review, not by the tool.
namespace qsp {
namespace lint {

/// How a file is treated by path-scoped rules.
enum class FileKind {
  /// Library code under src/ — every rule applies.
  kLibrary,
  /// Library code under src/obs/ — the telemetry layer; exempt from
  /// `nondeterminism` (it owns the process's clocks) but nothing else.
  kLibraryObs,
  /// Benchmark sources under bench/ — only `discarded-status` applies
  /// (benches legitimately time things and print to stdout), but the
  /// whole-program audit still includes them in the include graph.
  kBench,
  /// Sources emitted or driven by scripts/ (generated tables, harness
  /// stubs). Same rule scope as kBench; classified explicitly so the
  /// audit can attribute findings to the generator, not the output.
  kScript,
  /// Tests, tools, examples — only `discarded-status` applies.
  kOther,
};

/// One source file handed to the linter.
struct SourceFile {
  std::string path;
  std::string content;
  FileKind kind = FileKind::kLibrary;
};

/// One rule violation.
struct Finding {
  std::string file;
  int line = 0;  // 1-based.
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Classifies a path by its directory: src/obs/ -> kLibraryObs, src/ ->
/// kLibrary, bench/ -> kBench, scripts/ -> kScript, everything else ->
/// kOther. Path separators may be '/' only (the tree is linted in-repo).
FileKind ClassifyPath(const std::string& path);

/// Scans every file for function declarations returning qsp::Status or
/// qsp::Result<T> and returns the function names. The set is what makes
/// `discarded-status` work without an AST: a bare statement call is only
/// flagged when its callee is known to return one of these types.
std::set<std::string> CollectStatusReturners(
    const std::vector<SourceFile>& files);

/// Lints one file against every rule its kind admits.
std::vector<Finding> LintFile(const SourceFile& file,
                              const std::set<std::string>& status_returners);

/// Two-pass convenience: collect returners across all files, then lint
/// each. Findings are ordered by (file, line).
std::vector<Finding> LintFiles(const std::vector<SourceFile>& files);

/// Strips // and /* */ comments, string literals, and char literals,
/// replacing them with spaces (newlines preserved, so line numbers and
/// column positions survive). Exposed for tests.
std::string StripCommentsAndStrings(const std::string& content);

/// Per-line `// qsp-lint: allow(rule, rule)` suppression markers, parsed
/// from the RAW file content (they live inside comments, which the
/// stripped text loses). Shared by the per-file rules and the
/// whole-program audit (audit.h), so one suppression syntax covers both.
std::map<int, std::set<std::string>> CollectAllowMarkers(
    const std::string& raw);

/// Shared token utilities for the audit modules (include_graph.cc,
/// lock_graph.cc). They operate on comment/string-stripped text.
namespace text {
bool IsWordChar(char c);
bool IsSpace(char c);
/// True when content[pos, pos+word.size()) is `word` with non-word
/// characters (or the buffer edge) on both sides.
bool WordAt(const std::string& s, size_t pos, const std::string& word);
size_t SkipSpaces(const std::string& s, size_t pos);
/// Reads an identifier at pos; returns empty if none (or it starts with
/// a digit).
std::string ReadIdent(const std::string& s, size_t pos);
/// 1-based line number of a buffer offset.
int LineOf(const std::string& s, size_t pos);
}  // namespace text

}  // namespace lint
}  // namespace qsp

#endif  // QSP_TOOLS_LINT_LINT_H_
