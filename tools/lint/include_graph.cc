#include "lint/include_graph.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <utility>

namespace qsp {
namespace lint {

namespace {

using text::IsSpace;
using text::IsWordChar;
using text::LineOf;
using text::ReadIdent;
using text::SkipSpaces;
using text::WordAt;

std::string DirOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string StemOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  const size_t base = slash == std::string::npos ? 0 : slash + 1;
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot < base) return path.substr(base);
  return path.substr(base, dot - base);
}

/// True when `cc` is the implementation file of header `h` (same
/// directory, same stem): foo.cc may include foo.h unconditionally.
bool IsPrimaryHeader(const std::string& cc, const std::string& h) {
  return DirOf(cc) == DirOf(h) && StemOf(cc) == StemOf(h);
}

const char* const kHarvestKeywords[] = {
    "if",     "else",   "for",    "while",  "do",      "switch",  "case",
    "return", "break",  "continue", "goto", "throw",   "new",     "delete",
    "using",  "namespace", "template", "typedef", "public", "private",
    "protected", "static_assert", "extern", "class", "struct", "enum",
    "union",  "friend", "operator", "sizeof", "default", "const",
    "constexpr", "inline", "static", "virtual", "explicit", "typename",
    "void",   "int",    "bool",   "char",   "double",  "float",   "auto",
    "noexcept", "decltype", "alignof", "requires", "catch",
};

bool IsHarvestKeyword(const std::string& word) {
  for (const char* kw : kHarvestKeywords) {
    if (word == kw) return true;
  }
  return false;
}

/// Names a header contributes to its includers, harvested token-wise:
/// macro #defines (from the raw text), type names introduced by
/// class/struct/union/enum, alias names (`using X = ...`, typedef),
/// enumerators, callable names (identifier directly followed by '('),
/// and initialized names (identifier directly followed by '='). The
/// harvest deliberately over-collects — a name that is really a use, not
/// a declaration, only makes the unused-include check more lenient,
/// never noisier.
std::set<std::string> HarvestProvidedNames(const SourceFile& file,
                                           const std::string& stripped) {
  std::set<std::string> names;

  // #define NAME — from the raw content (directives survive stripping,
  // but scanning raw is simplest for the one-line form).
  const std::string& raw = file.content;
  size_t pos = 0;
  while ((pos = raw.find("#define", pos)) != std::string::npos) {
    const size_t at = SkipSpaces(raw, pos + 7);
    const std::string name = ReadIdent(raw, at);
    if (!name.empty()) names.insert(name);
    pos += 7;
  }

  const std::string& s = stripped;
  for (size_t i = 0; i < s.size(); ++i) {
    if (!IsWordChar(s[i]) || (i > 0 && IsWordChar(s[i - 1]))) continue;
    const std::string word = ReadIdent(s, i);
    if (word.empty()) continue;
    const size_t after = i + word.size();

    if (word == "class" || word == "struct" || word == "union" ||
        word == "enum") {
      size_t j = SkipSpaces(s, after);
      // `enum class Name` / attribute macros: skip further keywords.
      std::string ident = ReadIdent(s, j);
      while (!ident.empty() && (ident == "class" || ident == "struct" ||
                                IsHarvestKeyword(ident))) {
        j = SkipSpaces(s, j + ident.size());
        ident = ReadIdent(s, j);
      }
      if (!ident.empty()) names.insert(ident);
      // Enumerators: first identifier after '{' and after each ',' until
      // the matching '}'.
      if (word == "enum") {
        size_t k = j;
        while (k < s.size() && s[k] != '{' && s[k] != ';') ++k;
        if (k < s.size() && s[k] == '{') {
          int depth = 0;
          bool expect = true;
          for (; k < s.size(); ++k) {
            if (s[k] == '{') {
              ++depth;
              expect = true;
            } else if (s[k] == '}') {
              if (--depth == 0) break;
            } else if (s[k] == ',') {
              if (depth == 1) expect = true;
            } else if (expect && IsWordChar(s[k])) {
              const std::string e = ReadIdent(s, k);
              if (!e.empty()) names.insert(e);
              k += e.empty() ? 0 : e.size() - 1;
              expect = false;
            }
          }
        }
      }
      i = after - 1;
      continue;
    }

    if (word == "using") {
      const size_t j = SkipSpaces(s, after);
      const std::string ident = ReadIdent(s, j);
      if (!ident.empty()) {
        const size_t eq = SkipSpaces(s, j + ident.size());
        if (eq < s.size() && s[eq] == '=') names.insert(ident);
      }
      i = after - 1;
      continue;
    }

    if (word == "typedef") {
      // Last identifier before the terminating ';'.
      size_t j = after;
      std::string last;
      while (j < s.size() && s[j] != ';') {
        if (IsWordChar(s[j]) && (j == 0 || !IsWordChar(s[j - 1]))) {
          const std::string ident = ReadIdent(s, j);
          if (!ident.empty()) last = ident;
        }
        ++j;
      }
      if (!last.empty() && !IsHarvestKeyword(last)) names.insert(last);
      i = after - 1;
      continue;
    }

    if (IsHarvestKeyword(word)) {
      i = after - 1;
      continue;
    }
    const size_t next = SkipSpaces(s, after);
    if (next < s.size() && (s[next] == '(' || s[next] == '=')) {
      names.insert(word);
    }
    i = after - 1;
  }
  return names;
}

/// Every word token a file references, excluding tokens on #include
/// lines (so the include target's path components never count as use).
std::set<std::string> CollectUsedNames(const std::string& stripped) {
  std::set<std::string> used;
  size_t pos = 0;
  while (pos < stripped.size()) {
    size_t eol = stripped.find('\n', pos);
    if (eol == std::string::npos) eol = stripped.size();
    const size_t first = SkipSpaces(stripped, pos);
    const bool directive = first < eol && stripped[first] == '#';
    if (!directive) {
      for (size_t i = pos; i < eol; ++i) {
        if (!IsWordChar(stripped[i]) || (i > pos && IsWordChar(stripped[i - 1]))) {
          continue;
        }
        const std::string word = ReadIdent(stripped, i);
        if (!word.empty()) {
          used.insert(word);
          i += word.size() - 1;
        }
      }
    }
    pos = eol + 1;
  }
  return used;
}

/// Iterative Tarjan SCC over the resolved include graph. Nodes are
/// corpus-path indices; returns the SCC id per node and SCC count.
size_t StronglyConnected(const std::vector<std::vector<size_t>>& adj,
                         std::vector<size_t>* scc_of) {
  const size_t n = adj.size();
  std::vector<size_t> index(n, SIZE_MAX), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  scc_of->assign(n, SIZE_MAX);
  size_t next_index = 0, scc_count = 0;

  struct Frame {
    size_t v;
    size_t child = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != SIZE_MAX) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        const size_t w = adj[f.v][f.child++];
        if (index[w] == SIZE_MAX) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            const size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            (*scc_of)[w] = scc_count;
            if (w == f.v) break;
          }
          ++scc_count;
        }
        const size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return scc_count;
}

}  // namespace

bool ParseLayerSpec(const std::string& content, LayerSpec* spec,
                    std::string* error) {
  *spec = LayerSpec();
  size_t pos = 0;
  int lineno = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string line = content.substr(pos, eol - pos);
    ++lineno;
    pos = eol + 1;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> words;
    size_t i = 0;
    while (i < line.size()) {
      if (IsSpace(line[i])) {
        ++i;
        continue;
      }
      size_t end = i;
      while (end < line.size() && !IsSpace(line[end])) ++end;
      words.push_back(line.substr(i, end - i));
      i = end;
    }
    if (words.empty()) {
      if (eol == content.size()) break;
      continue;
    }
    if (words[0] == "layer" && words.size() == 3) {
      char* rest = nullptr;
      const long rank = std::strtol(words[2].c_str(), &rest, 10);
      if (rest == nullptr || *rest != '\0') {
        *error = "line " + std::to_string(lineno) + ": non-numeric rank '" +
                 words[2] + "'";
        return false;
      }
      if (spec->declared(words[1])) {
        *error = "line " + std::to_string(lineno) + ": duplicate layer '" +
                 words[1] + "'";
        return false;
      }
      spec->rank[words[1]] = static_cast<int>(rank);
    } else if (words[0] == "crosscut" && words.size() == 2) {
      if (spec->declared(words[1])) {
        *error = "line " + std::to_string(lineno) + ": duplicate layer '" +
                 words[1] + "'";
        return false;
      }
      spec->crosscut.insert(words[1]);
    } else {
      *error = "line " + std::to_string(lineno) + ": expected 'layer <name> " +
               "<rank>' or 'crosscut <name>', got '" + words[0] + "'";
      return false;
    }
    if (eol == content.size()) break;
  }
  return true;
}

std::string LayerOf(const std::string& path) {
  size_t at = 0;
  if (path.rfind("src/", 0) == 0) {
    at = 4;
  } else {
    const size_t mid = path.find("/src/");
    if (mid == std::string::npos) return std::string();
    at = mid + 5;
  }
  const size_t slash = path.find('/', at);
  if (slash == std::string::npos) return std::string();
  return path.substr(at, slash - at);
}

std::vector<IncludeEdge> ExtractIncludes(
    const SourceFile& file, const std::set<std::string>& corpus_paths) {
  std::vector<IncludeEdge> edges;
  const std::string stripped = StripCommentsAndStrings(file.content);
  const std::string& raw = file.content;
  size_t pos = 0;
  while ((pos = stripped.find('#', pos)) != std::string::npos) {
    const size_t here = pos++;
    size_t j = SkipSpaces(stripped, here + 1);
    if (!WordAt(stripped, j, "include")) continue;
    // The target is a string literal, which stripping blanked; offsets
    // are preserved, so read it back from the raw text.
    j = SkipSpaces(raw, j + 7);
    if (j >= raw.size() || raw[j] != '"') continue;  // <system> include.
    const size_t close = raw.find('"', j + 1);
    if (close == std::string::npos) continue;
    IncludeEdge edge;
    edge.from = file.path;
    edge.target = raw.substr(j + 1, close - j - 1);
    edge.line = LineOf(stripped, here);
    const std::string candidates[] = {
        "src/" + edge.target,
        "tools/" + edge.target,
        edge.target,
        "bench/" + edge.target,
        DirOf(file.path).empty() ? edge.target
                                 : DirOf(file.path) + "/" + edge.target,
    };
    for (const std::string& candidate : candidates) {
      if (corpus_paths.count(candidate) > 0) {
        edge.to = candidate;
        break;
      }
    }
    edges.push_back(std::move(edge));
  }
  return edges;
}

std::vector<Finding> AuditIncludes(const std::vector<SourceFile>& files,
                                   const LayerSpec& spec) {
  std::vector<Finding> findings;

  std::set<std::string> corpus_paths;
  for (const SourceFile& file : files) corpus_paths.insert(file.path);

  std::map<std::string, size_t> index_of;
  std::vector<const SourceFile*> by_index;
  for (const SourceFile& file : files) {
    if (index_of.emplace(file.path, by_index.size()).second) {
      by_index.push_back(&file);
    }
  }

  std::vector<std::string> stripped(by_index.size());
  std::vector<std::vector<IncludeEdge>> edges(by_index.size());
  for (size_t i = 0; i < by_index.size(); ++i) {
    stripped[i] = StripCommentsAndStrings(by_index[i]->content);
    edges[i] = ExtractIncludes(*by_index[i], corpus_paths);
  }

  // ------------------------------------------------------ layer rules
  for (size_t i = 0; i < by_index.size(); ++i) {
    const std::string from_layer = LayerOf(by_index[i]->path);
    if (!from_layer.empty() && !spec.declared(from_layer)) {
      findings.push_back(Finding{
          by_index[i]->path, 1, "layer-undeclared",
          "subsystem 'src/" + from_layer +
              "/' is not declared in the layer spec; add a `layer " +
              from_layer +
              " <rank>` (or `crosscut`) line to docs/layers.conf"});
    }
    if (from_layer.empty() || spec.crosscut.count(from_layer) > 0) continue;
    const auto from_rank = spec.rank.find(from_layer);
    if (from_rank == spec.rank.end()) continue;
    for (const IncludeEdge& edge : edges[i]) {
      if (edge.to.empty()) continue;
      const std::string to_layer = LayerOf(edge.to);
      if (to_layer.empty() || to_layer == from_layer) continue;
      if (spec.crosscut.count(to_layer) > 0) continue;
      const auto to_rank = spec.rank.find(to_layer);
      if (to_rank == spec.rank.end()) continue;
      if (to_rank->second > from_rank->second) {
        findings.push_back(Finding{
            edge.from, edge.line, "layer-back-edge",
            "layer '" + from_layer + "' (rank " +
                std::to_string(from_rank->second) + ") includes '" +
                edge.target + "' from layer '" + to_layer + "' (rank " +
                std::to_string(to_rank->second) +
                "), against the declared layering in docs/layers.conf"});
      }
    }
  }

  // --------------------------------------------------- include cycles
  std::vector<std::vector<size_t>> adj(by_index.size());
  for (size_t i = 0; i < by_index.size(); ++i) {
    for (const IncludeEdge& edge : edges[i]) {
      if (edge.to.empty()) continue;
      adj[i].push_back(index_of.at(edge.to));
    }
  }
  std::vector<size_t> scc_of;
  const size_t scc_count = StronglyConnected(adj, &scc_of);
  std::vector<std::vector<size_t>> members(scc_count);
  for (size_t i = 0; i < by_index.size(); ++i) members[scc_of[i]].push_back(i);
  for (std::vector<size_t>& scc : members) {
    bool self_loop = false;
    if (scc.size() == 1) {
      for (const size_t w : adj[scc[0]]) self_loop = self_loop || w == scc[0];
      if (!self_loop) continue;
    }
    // Deterministic cycle listing: start at the lexicographically first
    // member, repeatedly step to the first in-SCC neighbor not yet
    // visited (or the start, closing the loop).
    std::sort(scc.begin(), scc.end(), [&](size_t a, size_t b) {
      return by_index[a]->path < by_index[b]->path;
    });
    const size_t start = scc[0];
    const std::set<size_t> in_scc(scc.begin(), scc.end());
    std::vector<size_t> path{start};
    std::set<size_t> visited{start};
    size_t cur = start;
    while (true) {
      std::vector<size_t> nexts;
      for (const size_t w : adj[cur]) {
        if (in_scc.count(w) > 0) nexts.push_back(w);
      }
      std::sort(nexts.begin(), nexts.end(), [&](size_t a, size_t b) {
        return by_index[a]->path < by_index[b]->path;
      });
      size_t next = SIZE_MAX;
      for (const size_t w : nexts) {
        if (w == start && (path.size() > 1 || self_loop)) {
          next = w;
          break;
        }
        if (visited.count(w) == 0) {
          next = w;
          break;
        }
      }
      if (next == SIZE_MAX || next == start) break;
      path.push_back(next);
      visited.insert(next);
      cur = next;
    }
    std::string cycle;
    for (const size_t v : path) cycle += by_index[v]->path + " -> ";
    cycle += by_index[start]->path;
    int line = 1;
    const size_t second = path.size() > 1 ? path[1] : start;
    for (const IncludeEdge& edge : edges[start]) {
      if (!edge.to.empty() && index_of.at(edge.to) == second) {
        line = edge.line;
        break;
      }
    }
    findings.push_back(Finding{by_index[start]->path, line, "include-cycle",
                               "include cycle: " + cycle});
  }

  // -------------------------------------------------- unused includes
  std::vector<std::set<std::string>> provided(by_index.size());
  for (size_t i = 0; i < by_index.size(); ++i) {
    provided[i] = HarvestProvidedNames(*by_index[i], stripped[i]);
  }
  // Transitive provided-name closure, for the "transitive-only" hint.
  // Propagate to a fixed point; the include graph is shallow, so the
  // simple iteration converges fast (cycles were reported above and
  // saturate harmlessly).
  std::vector<std::set<std::string>> reachable = provided;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < by_index.size(); ++i) {
      for (const size_t w : adj[i]) {
        for (const std::string& name : reachable[w]) {
          if (reachable[i].insert(name).second) changed = true;
        }
      }
    }
  }
  for (size_t i = 0; i < by_index.size(); ++i) {
    const std::set<std::string> used = CollectUsedNames(stripped[i]);
    for (const IncludeEdge& edge : edges[i]) {
      if (edge.to.empty()) continue;
      const size_t h = index_of.at(edge.to);
      if (h == i) continue;
      if (IsPrimaryHeader(by_index[i]->path, edge.to)) continue;
      if (provided[h].empty()) continue;  // Nothing harvestable; skip.
      bool direct = false;
      for (const std::string& name : provided[h]) {
        if (used.count(name) > 0) {
          direct = true;
          break;
        }
      }
      if (direct) continue;
      bool transitive = false;
      for (const std::string& name : reachable[h]) {
        if (used.count(name) > 0) {
          transitive = true;
          break;
        }
      }
      findings.push_back(Finding{
          edge.from, edge.line, "unused-include",
          transitive
              ? "'" + edge.target +
                    "' is only transitively used: no name declared in it is "
                    "referenced here, only names from headers it includes — "
                    "include the real provider directly"
              : "'" + edge.target +
                    "' is unused: no name it declares is referenced in this "
                    "file"});
    }
  }

  return findings;
}

}  // namespace lint
}  // namespace qsp
