#include "lint/lock_graph.h"

#include <algorithm>
#include <cctype>

namespace qsp {
namespace lint {
namespace {

using text::IsSpace;
using text::IsWordChar;
using text::LineOf;
using text::ReadIdent;
using text::SkipSpaces;
using text::WordAt;

bool IsMutexTypeWord(const std::string& w) {
  return w == "mutex" || w == "recursive_mutex" || w == "shared_mutex" ||
         w == "timed_mutex" || w == "recursive_timed_mutex" ||
         w == "shared_timed_mutex";
}

bool IsGuardTypeWord(const std::string& w) {
  return w == "lock_guard" || w == "unique_lock" || w == "scoped_lock" ||
         w == "shared_lock";
}

bool IsAnnotationMacro(const std::string& w) {
  return w == "QSP_GUARDED_BY" || w == "QSP_PT_GUARDED_BY" ||
         w == "QSP_REQUIRES" || w == "QSP_EXCLUDES" ||
         w == "QSP_ACQUIRED_BEFORE" || w == "QSP_ACQUIRED_AFTER";
}

bool IsFnSpecifierWord(const std::string& w) {
  return w == "const" || w == "noexcept" || w == "override" || w == "final" ||
         w == "mutable" || w == "volatile" || w == "throw" || w == "try";
}

// Keywords that look like `name(` but are never calls or function names.
bool IsControlKeyword(const std::string& w) {
  return w == "if" || w == "else" || w == "for" || w == "while" ||
         w == "do" || w == "switch" || w == "case" || w == "return" ||
         w == "sizeof" || w == "alignof" || w == "typeid" || w == "new" ||
         w == "delete" || w == "throw" || w == "catch" ||
         w == "static_cast" || w == "dynamic_cast" || w == "const_cast" ||
         w == "reinterpret_cast" || w == "decltype" || w == "not" ||
         w == "and" || w == "or" || w == "defined" || w == "assert";
}

// ---------------------------------------------------------------------------
// Cursor helpers over stripped text.
// ---------------------------------------------------------------------------

// i at '#': skips the preprocessor line, honoring backslash continuations.
size_t SkipPreprocLine(const std::string& s, size_t i) {
  while (i < s.size()) {
    size_t eol = s.find('\n', i);
    if (eol == std::string::npos) return s.size();
    size_t back = eol;
    while (back > i && IsSpace(s[back - 1]) && s[back - 1] != '\n') --back;
    if (back > i && s[back - 1] == '\\') {
      i = eol + 1;  // continued line
      continue;
    }
    return eol + 1;
  }
  return i;
}

// i at `open`: returns the index just past the matching `close` (or n).
size_t SkipBalanced(const std::string& s, size_t i, char open, char close) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == open) {
      ++depth;
    } else if (s[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

// i at '<': skips a template argument list, tolerant of nested <> and the
// `->` token. Only called where an argument list is syntactically expected.
size_t SkipAngles(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (i > 0 && s[i - 1] == '-') continue;  // `->`
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{') {
      return i;  // malformed / not really a template list — bail
    }
  }
  return i;
}

// ---------------------------------------------------------------------------
// Corpus: everything harvested before body analysis.
// ---------------------------------------------------------------------------

struct FnAnnotations {
  std::string cls;  // class context the expressions resolve in
  std::vector<std::string> requires_exprs;
  std::vector<std::string> excludes_exprs;
};

struct BodyInfo {
  int file_index = 0;
  std::string cls;                       // qualifying / enclosing class
  std::vector<std::string> class_stack;  // innermost last, for resolution
  std::string name;
  size_t begin = 0, end = 0;  // [begin,end) between the body braces
  std::vector<std::string> callable_params;
};

struct Corpus {
  const std::vector<SourceFile>* files = nullptr;
  std::vector<std::string> stripped;
  // class name -> mutex member names / callback (std::function) members.
  std::map<std::string, std::set<std::string>> class_mutexes;
  std::map<std::string, std::set<std::string>> class_callables;
  // member name -> declaring classes, for `obj.mu` resolution.
  std::map<std::string, std::set<std::string>> mutex_owners;
  std::set<std::string> file_scope_mutexes;  // stored as "::name"
  // "Cls::F" or "F" -> annotations from any declaration or definition.
  std::map<std::string, FnAnnotations> annotations;
  std::vector<BodyInfo> bodies;
};

// Splits a parenthesized argument list body on top-level commas.
std::vector<std::string> SplitArgs(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  for (auto& a : out) {
    size_t b = 0, e = a.size();
    while (b < e && IsSpace(a[b])) ++b;
    while (e > b && IsSpace(a[e - 1])) --e;
    a = a.substr(b, e - b);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Structural scan: classes, mutex/callback members, function bodies.
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass, kBlock } kind;
  std::string name;
};

class StructScanner {
 public:
  StructScanner(int file_index, const std::string& s, Corpus* corpus)
      : file_(file_index), s_(s), corpus_(corpus) {}

  void Run() {
    size_t i = 0;
    bool tilde = false;
    while (i < s_.size()) {
      char c = s_[i];
      if (IsSpace(c)) {
        ++i;
      } else if (c == '#') {
        i = SkipPreprocLine(s_, i);
      } else if (c == '{') {
        scopes_.push_back({Scope::kBlock, ""});
        ++i;
      } else if (c == '}') {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i;
      } else if (c == '=') {
        i = SkipInitializer(i);
      } else if (c == '~') {
        tilde = true;
        ++i;
        continue;
      } else if (c == '[') {
        i = (i + 1 < s_.size() && s_[i + 1] == '[') ? SkipAttribute(i) : i + 1;
      } else if (IsWordChar(c) && !std::isdigit(static_cast<unsigned char>(c))) {
        i = HandleWord(i, tilde);
      } else {
        ++i;
      }
      tilde = false;
    }
  }

 private:
  std::string EnclosingClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Scope::kClass) return it->name;
    return "";
  }

  std::vector<std::string> ClassStack() const {
    std::vector<std::string> out;
    for (const Scope& sc : scopes_)
      if (sc.kind == Scope::kClass && !sc.name.empty()) out.push_back(sc.name);
    return out;
  }

  size_t SkipAttribute(size_t i) {  // i at "[["
    size_t e = s_.find("]]", i);
    return e == std::string::npos ? s_.size() : e + 2;
  }

  // i at '=': skip to the terminating ';' balancing braces and parens, so
  // initializers (including lambdas in them) never reach the scanner.
  size_t SkipInitializer(size_t i) {
    int depth = 0;
    for (; i < s_.size(); ++i) {
      char c = s_[i];
      if (c == '(' || c == '{' || c == '[') ++depth;
      if (c == ')' || c == '}' || c == ']') --depth;
      if (c == ';' && depth <= 0) return i + 1;
    }
    return i;
  }

  size_t HandleWord(size_t i, bool tilde);
  size_t HandleNamespace(size_t i);
  size_t HandleClass(size_t i);
  size_t HandleEnum(size_t i);
  size_t HandleMutexDecl(size_t i, const std::string& type_word);
  size_t HandleCallableDecl(size_t i);
  size_t HandleOperator(size_t i);
  size_t HandleFunctionCandidate(size_t i, bool tilde);

  int file_;
  const std::string& s_;
  Corpus* corpus_;
  std::vector<Scope> scopes_;
};

size_t StructScanner::HandleWord(size_t i, bool tilde) {
  std::string w = ReadIdent(s_, i);
  size_t after = i + w.size();
  if (w == "namespace") return HandleNamespace(after);
  if (w == "template") {
    size_t j = SkipSpaces(s_, after);
    return (j < s_.size() && s_[j] == '<') ? SkipAngles(s_, j) : after;
  }
  if (w == "using" || w == "typedef" || w == "friend" ||
      w == "static_assert") {
    size_t e = s_.find(';', after);
    return e == std::string::npos ? s_.size() : e + 1;
  }
  if (w == "enum") return HandleEnum(after);
  if (w == "class" || w == "struct" || w == "union") return HandleClass(after);
  if (w == "operator") return HandleOperator(after);
  if (IsMutexTypeWord(w)) return HandleMutexDecl(after, w);
  if (w == "function") return HandleCallableDecl(after);
  if (IsAnnotationMacro(w)) {
    size_t j = SkipSpaces(s_, after);
    return (j < s_.size() && s_[j] == '(') ? SkipBalanced(s_, j, '(', ')')
                                           : after;
  }
  return HandleFunctionCandidate(i, tilde);
}

size_t StructScanner::HandleNamespace(size_t i) {
  size_t j = SkipSpaces(s_, i);
  std::string name;
  while (j < s_.size()) {
    std::string part = ReadIdent(s_, j);
    if (part.empty()) break;
    name = part;
    j = SkipSpaces(s_, j + part.size());
    if (j + 1 < s_.size() && s_[j] == ':' && s_[j + 1] == ':') {
      j = SkipSpaces(s_, j + 2);
      continue;
    }
    break;
  }
  if (j < s_.size() && s_[j] == '{') {
    scopes_.push_back({Scope::kNamespace, name});
    return j + 1;
  }
  if (j < s_.size() && s_[j] == '=') {  // namespace alias
    size_t e = s_.find(';', j);
    return e == std::string::npos ? s_.size() : e + 1;
  }
  return j;
}

size_t StructScanner::HandleClass(size_t i) {
  size_t j = SkipSpaces(s_, i);
  // Skip attribute-style macros between the keyword and the name.
  std::string name = ReadIdent(s_, j);
  if (IsAnnotationMacro(name)) {
    j = SkipSpaces(s_, j + name.size());
    if (j < s_.size() && s_[j] == '(') j = SkipBalanced(s_, j, '(', ')');
    j = SkipSpaces(s_, j);
    name = ReadIdent(s_, j);
  }
  j += name.size();
  // Scan forward to ';' (declaration / variable of elaborated type) or the
  // class body '{', skipping template argument lists in base clauses.
  while (j < s_.size()) {
    char c = s_[j];
    if (c == ';') return j + 1;
    if (c == '<') {
      j = SkipAngles(s_, j);
      continue;
    }
    if (c == '(') {  // `struct X foo(...)` — not a class body
      return j;
    }
    if (c == '{') {
      scopes_.push_back({Scope::kClass, name});
      return j + 1;
    }
    if (c == '=') return j;  // `struct X v = ...`
    ++j;
  }
  return j;
}

size_t StructScanner::HandleEnum(size_t i) {
  // Consume through the optional body and the trailing ';'.
  size_t j = i;
  while (j < s_.size() && s_[j] != ';' && s_[j] != '{') ++j;
  if (j < s_.size() && s_[j] == '{') j = SkipBalanced(s_, j, '{', '}');
  while (j < s_.size() && s_[j] != ';') ++j;
  return j < s_.size() ? j + 1 : j;
}

size_t StructScanner::HandleMutexDecl(size_t i, const std::string&) {
  size_t j = SkipSpaces(s_, i);
  if (j < s_.size() && (s_[j] == '*' || s_[j] == '&' || s_[j] == '<' ||
                        s_[j] == '>' || s_[j] == ')'))
    return j;  // pointer/ref decl or template-argument position
  std::string name = ReadIdent(s_, j);
  if (name.empty()) return j;
  j = SkipSpaces(s_, j + name.size());
  // Tolerate thread-safety annotations between the name and the terminator.
  while (j < s_.size()) {
    std::string w = ReadIdent(s_, j);
    if (!IsAnnotationMacro(w)) break;
    j = SkipSpaces(s_, j + w.size());
    if (j < s_.size() && s_[j] == '(') j = SkipBalanced(s_, j, '(', ')');
    j = SkipSpaces(s_, j);
  }
  if (j >= s_.size() || (s_[j] != ';' && s_[j] != '=' && s_[j] != '{'))
    return j;
  std::string cls = EnclosingClass();
  if (cls.empty()) {
    corpus_->file_scope_mutexes.insert("::" + name);
  } else {
    corpus_->class_mutexes[cls].insert(name);
    corpus_->mutex_owners[name].insert(cls);
  }
  return j;
}

size_t StructScanner::HandleCallableDecl(size_t i) {
  size_t j = SkipSpaces(s_, i);
  if (j >= s_.size() || s_[j] != '<') return j;  // not std::function<...>
  j = SkipSpaces(s_, SkipAngles(s_, j));
  while (j < s_.size() && (s_[j] == '*' || s_[j] == '&')) j = SkipSpaces(s_, j + 1);
  std::string name = ReadIdent(s_, j);
  if (name.empty() || name == "const") return j;
  j = SkipSpaces(s_, j + name.size());
  while (j < s_.size()) {
    std::string w = ReadIdent(s_, j);
    if (!IsAnnotationMacro(w)) break;
    j = SkipSpaces(s_, j + w.size());
    if (j < s_.size() && s_[j] == '(') j = SkipBalanced(s_, j, '(', ')');
    j = SkipSpaces(s_, j);
  }
  if (j >= s_.size() || (s_[j] != ';' && s_[j] != '=' && s_[j] != '{'))
    return j;
  std::string cls = EnclosingClass();
  corpus_->class_callables[cls].insert(name);
  return j;
}

size_t StructScanner::HandleOperator(size_t i) {
  // Skip the declarator; consume a body if one follows.
  size_t j = i;
  while (j < s_.size() && s_[j] != ';' && s_[j] != '{') ++j;
  if (j < s_.size() && s_[j] == '{') return SkipBalanced(s_, j, '{', '}');
  return j < s_.size() ? j + 1 : j;
}

// Parameter-list scan for std::function-typed parameters (callbacks).
std::vector<std::string> CallableParamNames(const std::string& params) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < params.size()) {
    if (!IsWordChar(params[i])) {
      ++i;
      continue;
    }
    std::string w = ReadIdent(params, i);
    size_t j = i + std::max<size_t>(w.size(), 1);
    if (w == "function") {
      j = SkipSpaces(params, j);
      if (j < params.size() && params[j] == '<') {
        j = SkipSpaces(params, SkipAngles(params, j));
        while (j < params.size() &&
               (params[j] == '*' || params[j] == '&' || IsSpace(params[j])))
          ++j;
        std::string name = ReadIdent(params, j);
        if (name == "const") {
          j = SkipSpaces(params, j + name.size());
          name = ReadIdent(params, j);
        }
        if (!name.empty()) out.push_back(name);
        j += name.size();
      }
    }
    i = j;
  }
  return out;
}

size_t StructScanner::HandleFunctionCandidate(size_t i, bool tilde) {
  std::string w = ReadIdent(s_, i);
  if (w.empty()) return i + 1;
  size_t after = i + w.size();
  if (IsControlKeyword(w)) return after;
  std::string qualifier;
  std::string name = (tilde ? "~" : "") + w;
  size_t j = SkipSpaces(s_, after);
  if (j < s_.size() && s_[j] == '<') {
    size_t k = SkipSpaces(s_, SkipAngles(s_, j));
    if (!(k + 1 < s_.size() && s_[k] == ':' && s_[k + 1] == ':')) return after;
    j = k;
  }
  while (j + 1 < s_.size() && s_[j] == ':' && s_[j + 1] == ':') {
    j = SkipSpaces(s_, j + 2);
    bool dtor = false;
    if (j < s_.size() && s_[j] == '~') {
      dtor = true;
      j = SkipSpaces(s_, j + 1);
    }
    std::string part = ReadIdent(s_, j);
    if (part.empty()) return after;
    qualifier = name;
    name = (dtor ? "~" : "") + part;
    j += part.size();
    if (j < s_.size() && s_[j] == '<') j = SkipAngles(s_, j);
    j = SkipSpaces(s_, j);
  }
  if (j >= s_.size() || s_[j] != '(') return after;

  size_t params_open = j;
  size_t params_end = SkipBalanced(s_, j, '(', ')');
  if (params_end <= params_open + 1) return after;
  std::vector<std::string> callable_params = CallableParamNames(
      s_.substr(params_open + 1, params_end - params_open - 2));

  // Trailer: cv-qualifiers, annotations, trailing return, ctor init list —
  // until the body '{', a declaration ';', or something that proves this
  // was never a function.
  size_t k = params_end;
  FnAnnotations ann;
  bool have_body = false, bail = false;
  size_t body_open = 0;
  while (k < s_.size()) {
    k = SkipSpaces(s_, k);
    if (k >= s_.size()) break;
    char c = s_[k];
    if (c == ';') {
      ++k;
      break;
    }
    if (c == '{') {
      have_body = true;
      body_open = k;
      break;
    }
    if (c == '=') {  // = default / = delete / = 0
      size_t e = s_.find(';', k);
      k = e == std::string::npos ? s_.size() : e + 1;
      break;
    }
    if (c == '-' && k + 1 < s_.size() && s_[k + 1] == '>') {
      k += 2;
      while (k < s_.size() && s_[k] != '{' && s_[k] != ';') {
        if (s_[k] == '<')
          k = SkipAngles(s_, k);
        else if (s_[k] == '(')
          k = SkipBalanced(s_, k, '(', ')');
        else
          ++k;
      }
      continue;
    }
    if (c == ':') {  // ctor init list
      k = SkipSpaces(s_, k + 1);
      while (k < s_.size()) {
        while (k < s_.size()) {  // member/base name, possibly qualified
          std::string part = ReadIdent(s_, k);
          if (part.empty()) break;
          k += part.size();
          if (k < s_.size() && s_[k] == '<') k = SkipAngles(s_, k);
          if (k + 1 < s_.size() && s_[k] == ':' && s_[k + 1] == ':') {
            k += 2;
            continue;
          }
          break;
        }
        k = SkipSpaces(s_, k);
        if (k < s_.size() && s_[k] == '(')
          k = SkipBalanced(s_, k, '(', ')');
        else if (k < s_.size() && s_[k] == '{')
          k = SkipBalanced(s_, k, '{', '}');
        else {
          bail = true;
          break;
        }
        k = SkipSpaces(s_, k);
        if (k < s_.size() && s_[k] == ',') {
          k = SkipSpaces(s_, k + 1);
          continue;
        }
        break;
      }
      if (bail) break;
      continue;
    }
    if (c == '&') {  // ref-qualifier
      ++k;
      continue;
    }
    if (IsWordChar(c)) {
      std::string w2 = ReadIdent(s_, k);
      if (w2.empty()) {
        bail = true;
        break;
      }
      k += w2.size();
      if (w2 == "QSP_REQUIRES" || w2 == "QSP_EXCLUDES") {
        size_t p = SkipSpaces(s_, k);
        if (p < s_.size() && s_[p] == '(') {
          size_t pe = SkipBalanced(s_, p, '(', ')');
          for (const std::string& a :
               SplitArgs(s_.substr(p + 1, pe - p - 2))) {
            if (w2 == "QSP_REQUIRES")
              ann.requires_exprs.push_back(a);
            else
              ann.excludes_exprs.push_back(a);
          }
          k = pe;
        }
        continue;
      }
      if (IsFnSpecifierWord(w2) || IsAnnotationMacro(w2)) {
        size_t p = SkipSpaces(s_, k);
        if (p < s_.size() && s_[p] == '(' &&
            (IsAnnotationMacro(w2) || w2 == "noexcept" || w2 == "throw"))
          k = SkipBalanced(s_, p, '(', ')');
        continue;
      }
      bail = true;
      break;
    }
    bail = true;
    break;
  }
  if (bail) return after;

  std::string cls = !qualifier.empty() ? qualifier : EnclosingClass();
  std::string key = cls.empty() ? name : cls + "::" + name;
  if (!ann.requires_exprs.empty() || !ann.excludes_exprs.empty()) {
    FnAnnotations& slot = corpus_->annotations[key];
    slot.cls = cls;
    slot.requires_exprs.insert(slot.requires_exprs.end(),
                               ann.requires_exprs.begin(),
                               ann.requires_exprs.end());
    slot.excludes_exprs.insert(slot.excludes_exprs.end(),
                               ann.excludes_exprs.begin(),
                               ann.excludes_exprs.end());
  }
  if (!have_body) return std::max(k, after);

  size_t body_close = SkipBalanced(s_, body_open, '{', '}');
  BodyInfo b;
  b.file_index = file_;
  b.cls = cls;
  b.class_stack = ClassStack();
  if (!cls.empty() &&
      (b.class_stack.empty() || b.class_stack.back() != cls))
    b.class_stack.push_back(cls);
  b.name = name;
  b.begin = body_open + 1;
  b.end = body_close > body_open ? body_close - 1 : body_open + 1;
  b.callable_params = callable_params;
  corpus_->bodies.push_back(b);
  return body_close;
}

// ---------------------------------------------------------------------------
// Lock id resolution.
// ---------------------------------------------------------------------------

struct ResolvedLock {
  std::string id;              // "Class::member", "::name", or "?::name"
  bool explicit_recv = false;  // acquired through a non-this receiver
};

ResolvedLock ResolveLockExpr(const std::string& expr,
                             const std::vector<std::string>& class_stack,
                             const Corpus& corpus) {
  ResolvedLock r;
  std::string t;
  for (char c : expr)
    if (!IsSpace(c)) t += c;
  while (!t.empty() && (t[0] == '&' || t[0] == '*')) t.erase(0, 1);
  if (t.rfind("this->", 0) == 0) t = t.substr(6);
  size_t dot = t.find_last_of('.');
  size_t arrow = t.rfind("->");
  std::string recv, member = t;
  if (arrow != std::string::npos &&
      (dot == std::string::npos || arrow + 1 > dot)) {
    recv = t.substr(0, arrow);
    member = t.substr(arrow + 2);
  } else if (dot != std::string::npos) {
    recv = t.substr(0, dot);
    member = t.substr(dot + 1);
  }
  if (member.empty() || !IsWordChar(member[0])) return r;  // unusable
  if (recv.empty() || recv == "this") {
    for (auto it = class_stack.rbegin(); it != class_stack.rend(); ++it) {
      auto found = corpus.class_mutexes.find(*it);
      if (found != corpus.class_mutexes.end() && found->second.count(member)) {
        r.id = *it + "::" + member;
        return r;
      }
    }
    if (corpus.file_scope_mutexes.count("::" + member)) {
      r.id = "::" + member;
      return r;
    }
  } else {
    r.explicit_recv = true;
  }
  auto owners = corpus.mutex_owners.find(member);
  if (owners != corpus.mutex_owners.end() && owners->second.size() == 1) {
    r.id = *owners->second.begin() + "::" + member;
  } else {
    r.id = "?::" + member;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Function summaries and the body walk.
// ---------------------------------------------------------------------------

struct CallSite {
  std::string name;
  bool has_recv = false;
  std::vector<std::pair<std::string, bool>> held;  // (id, explicit_recv)
  int file_index = 0;
  size_t pos = 0;
};

struct Summary {
  std::string key;   // "Cls::F", "F", or "<lambda>" (never resolvable)
  std::string name;  // bare function name
  std::vector<std::string> class_stack;
  std::set<std::string> acquires;  // direct + annotated EXCLUDES
  std::set<std::string> trans;     // fixpoint closure
  bool invokes_cb = false;         // invokes a stored callback (any held set;
                                   // locally-held cases are reported locally)
  std::string cb_name;
  bool trans_cb = false;  // some callee chain invokes a stored callback
  std::string trans_cb_via;
  std::vector<CallSite> calls;
};

struct EdgeKeyLess {
  bool operator()(const std::pair<std::string, std::string>& a,
                  const std::pair<std::string, std::string>& b) const {
    return a < b;
  }
};
using EdgeMap =
    std::map<std::pair<std::string, std::string>, LockEdge, EdgeKeyLess>;

class BodyAnalyzer {
 public:
  BodyAnalyzer(const Corpus& corpus, const BodyInfo& body,
               std::vector<Summary>* summaries, EdgeMap* edges,
               std::vector<Finding>* findings)
      : corpus_(corpus),
        body_(body),
        s_(corpus.stripped[body.file_index]),
        path_((*corpus.files)[body.file_index].path),
        summaries_(summaries),
        edges_(edges),
        findings_(findings) {}

  // Analyzes [body.begin, body.end); `initial_held` comes from
  // QSP_REQUIRES on any declaration of this function. Appends this
  // function's summary (and one per lambda inside it) to *summaries_.
  void Run(const std::vector<std::string>& initial_held) {
    Summary sum;
    sum.key = body_.cls.empty() ? body_.name : body_.cls + "::" + body_.name;
    sum.name = body_.name;
    sum.class_stack = body_.class_stack;
    for (const std::string& name : body_.callable_params)
      local_callables_.insert(name);
    for (const std::string& id : initial_held)
      held_.push_back({id, false, -1, "", true});
    sum_ = &sum;
    Walk(body_.begin, body_.end);
    summaries_->push_back(std::move(sum));
  }

 private:
  struct Held {
    std::string id;
    bool explicit_recv = false;
    int depth = 0;
    std::string guard;  // guard variable, empty for manual lock()
    bool active = true;
  };

  std::vector<std::pair<std::string, bool>> ActiveHeld() const {
    std::vector<std::pair<std::string, bool>> out;
    for (const Held& h : held_)
      if (h.active) out.push_back({h.id, h.explicit_recv});
    return out;
  }

  void AddEdge(const std::string& held, bool held_expl,
               const std::string& acq, bool acq_expl, size_t pos) {
    if (held == acq && (held_expl || acq_expl)) return;  // other instance
    edges_->emplace(std::make_pair(held, acq),
                    LockEdge{held, acq, path_, LineOf(s_, pos)});
  }

  void Acquire(const ResolvedLock& r, const std::string& guard, size_t pos,
               bool active) {
    if (r.id.empty()) return;
    if (active) {
      for (const auto& [id, expl] : ActiveHeld())
        AddEdge(id, expl, r.id, r.explicit_recv, pos);
      sum_->acquires.insert(r.id);
    }
    held_.push_back({r.id, r.explicit_recv, depth_, guard, active});
  }

  void ReportCallbackInvoke(const std::string& name, size_t pos) {
    auto held = ActiveHeld();
    if (held.empty()) {
      sum_->invokes_cb = true;
      if (sum_->cb_name.empty()) sum_->cb_name = name;
      return;
    }
    std::string locks;
    for (const auto& [id, expl] : held) {
      (void)expl;
      if (!locks.empty()) locks += ", ";
      locks += id;
    }
    findings_->push_back(
        {path_, LineOf(s_, pos), "callback-under-lock",
         "stored callback `" + name + "` invoked while holding " + locks +
             "; the callee is arbitrary user code that can re-enter the "
             "locked object — copy it out and invoke after unlocking"});
    sum_->invokes_cb = true;
    if (sum_->cb_name.empty()) sum_->cb_name = name;
  }

  bool IsCallable(const std::string& name, bool has_recv) const {
    if (local_callables_.count(name)) return true;
    for (auto it = body_.class_stack.rbegin(); it != body_.class_stack.rend();
         ++it) {
      auto found = corpus_.class_callables.find(*it);
      if (found != corpus_.class_callables.end() &&
          found->second.count(name))
        return true;
    }
    auto file_scope = corpus_.class_callables.find("");
    if (file_scope != corpus_.class_callables.end() &&
        file_scope->second.count(name))
      return true;
    if (has_recv) {
      for (const auto& [cls, members] : corpus_.class_callables)
        if (members.count(name)) return true;
    }
    return false;
  }

  bool PrevIsMemberAccess(size_t i) const {
    size_t j = i;
    while (j > body_.begin && IsSpace(s_[j - 1])) --j;
    if (j <= body_.begin) return false;
    if (s_[j - 1] == '.') return true;
    return s_[j - 1] == '>' && j >= 2 && s_[j - 2] == '-';
  }

  bool IsLambdaIntro(size_t i) const {
    size_t j = i;
    while (j > body_.begin && IsSpace(s_[j - 1])) --j;
    if (j <= body_.begin) return true;
    char p = s_[j - 1];
    return !(IsWordChar(p) || p == ')' || p == ']');
  }

  void Walk(size_t begin, size_t end);
  size_t HandleLambda(size_t i, size_t end);
  size_t HandleWord(size_t i, size_t end);
  size_t HandleGuardDecl(const std::string& type_word, size_t i);
  void HandleManualLockOp(const std::string& var, const std::string& op,
                          size_t pos);

  const Corpus& corpus_;
  const BodyInfo& body_;
  const std::string& s_;
  const std::string& path_;
  std::vector<Summary>* summaries_;
  EdgeMap* edges_;
  std::vector<Finding>* findings_;
  Summary* sum_ = nullptr;
  std::vector<Held> held_;
  std::set<std::string> local_callables_;
  std::set<std::string> local_mutexes_;
  int depth_ = 0;
};

void BodyAnalyzer::Walk(size_t begin, size_t end) {
  size_t i = begin;
  while (i < end) {
    char c = s_[i];
    if (IsSpace(c)) {
      ++i;
    } else if (c == '#') {
      i = SkipPreprocLine(s_, i);
    } else if (c == '{') {
      ++depth_;
      ++i;
    } else if (c == '}') {
      --depth_;
      held_.erase(std::remove_if(held_.begin(), held_.end(),
                                 [&](const Held& h) {
                                   return h.depth > depth_;
                                 }),
                  held_.end());
      ++i;
    } else if (c == '[') {
      if (i + 1 < end && s_[i + 1] == '[') {
        size_t e = s_.find("]]", i);
        i = (e == std::string::npos || e >= end) ? i + 2 : e + 2;
      } else if (IsLambdaIntro(i)) {
        i = HandleLambda(i, end);
      } else {
        ++i;
      }
    } else if (c == '(') {
      // `(*cb)(...)` — invocation through a dereferenced callback pointer.
      size_t j = SkipSpaces(s_, i + 1);
      if (j < end && s_[j] == '*') {
        size_t k = SkipSpaces(s_, j + 1);
        std::string name = ReadIdent(s_, k);
        if (!name.empty()) {
          size_t after = SkipSpaces(s_, k + name.size());
          if (after < end && s_[after] == ')' &&
              SkipSpaces(s_, after + 1) < end &&
              s_[SkipSpaces(s_, after + 1)] == '(' &&
              IsCallable(name, false)) {
            ReportCallbackInvoke(name, i);
            i = after + 1;
            continue;
          }
        }
      }
      ++i;
    } else if (IsWordChar(c) &&
               !std::isdigit(static_cast<unsigned char>(c))) {
      i = HandleWord(i, end);
    } else {
      ++i;
    }
  }
}

size_t BodyAnalyzer::HandleLambda(size_t i, size_t end) {
  size_t j = i + 1;
  int bracket = 1;
  while (j < end && bracket > 0) {
    if (s_[j] == '[') ++bracket;
    if (s_[j] == ']') --bracket;
    ++j;
  }
  j = SkipSpaces(s_, j);
  if (j < end && s_[j] == '(') j = SkipSpaces(s_, SkipBalanced(s_, j, '(', ')'));
  // Specifiers / trailing return before the body.
  while (j < end && s_[j] != '{' && s_[j] != ';' && s_[j] != ')' &&
         s_[j] != ',') {
    if (s_[j] == '<')
      j = SkipAngles(s_, j);
    else if (s_[j] == '(')
      j = SkipBalanced(s_, j, '(', ')');
    else
      ++j;
  }
  if (j >= end || s_[j] != '{') return i + 1;  // not a lambda after all
  size_t close = SkipBalanced(s_, j, '{', '}');
  // Deferred work: analyze with a fresh empty held-set, as its own
  // anonymous (unresolvable) summary.
  BodyInfo lb;
  lb.file_index = body_.file_index;
  lb.cls = body_.cls;
  lb.class_stack = body_.class_stack;
  lb.name = "<lambda>";
  lb.begin = j + 1;
  lb.end = close > j ? close - 1 : j + 1;
  BodyAnalyzer nested(corpus_, lb, summaries_, edges_, findings_);
  nested.local_callables_ = local_callables_;  // captures see our callbacks
  nested.Run({});
  return close;
}

size_t BodyAnalyzer::HandleWord(size_t i, size_t end) {
  std::string w = ReadIdent(s_, i);
  if (w.empty()) return i + 1;
  size_t after = i + w.size();
  if (IsGuardTypeWord(w)) return HandleGuardDecl(w, after);
  if (w == "function") {
    size_t j = SkipSpaces(s_, after);
    if (j < end && s_[j] == '<') {
      j = SkipSpaces(s_, SkipAngles(s_, j));
      while (j < end && (s_[j] == '*' || s_[j] == '&')) j = SkipSpaces(s_, j + 1);
      std::string name = ReadIdent(s_, j);
      if (!name.empty() && name != "const") {
        local_callables_.insert(name);
        return j + name.size();
      }
      return j;
    }
    return after;
  }
  if (w == "auto") {  // `auto cb = batch_cb_;` — alias of a stored callback
    size_t j = SkipSpaces(s_, after);
    while (j < end && (s_[j] == '&' || s_[j] == '*')) j = SkipSpaces(s_, j + 1);
    std::string name = ReadIdent(s_, j);
    if (!name.empty()) {
      size_t k = SkipSpaces(s_, j + name.size());
      if (k < end && s_[k] == '=' && (k + 1 >= end || s_[k + 1] != '=')) {
        size_t r = SkipSpaces(s_, k + 1);
        if (WordAt(s_, r, "this")) {
          r += 4;
          if (r + 1 < end && s_[r] == '-' && s_[r + 1] == '>')
            r = SkipSpaces(s_, r + 2);
        }
        std::string rhs = ReadIdent(s_, r);
        if (!rhs.empty() && IsCallable(rhs, false))
          local_callables_.insert(name);
      }
    }
    return after;
  }
  if (IsMutexTypeWord(w)) {  // function-local mutex
    size_t j = SkipSpaces(s_, after);
    std::string name = ReadIdent(s_, j);
    if (!name.empty()) local_mutexes_.insert(name);
    return after;
  }
  if (IsControlKeyword(w)) return after;
  if (IsAnnotationMacro(w)) {
    size_t j = SkipSpaces(s_, after);
    return (j < end && s_[j] == '(') ? SkipBalanced(s_, j, '(', ')') : after;
  }
  // `x.lock()` / `x.unlock()` — guard-variable or manual mutex operation.
  size_t j = SkipSpaces(s_, after);
  if (j < end && (s_[j] == '.' || (s_[j] == '-' && j + 1 < end &&
                                   s_[j + 1] == '>'))) {
    size_t m0 = SkipSpaces(s_, j + (s_[j] == '.' ? 1 : 2));
    std::string m = ReadIdent(s_, m0);
    if (m == "lock" || m == "unlock" || m == "try_lock" ||
        m == "lock_shared" || m == "unlock_shared") {
      size_t p = SkipSpaces(s_, m0 + m.size());
      if (p < end && s_[p] == '(') {
        HandleManualLockOp(w, m, i);
        return SkipBalanced(s_, p, '(', ')');
      }
    }
    return after;  // other member access — the member is scanned next
  }
  if (j < end && s_[j] == '(') {
    bool has_recv = PrevIsMemberAccess(i);
    if (IsCallable(w, has_recv)) {
      ReportCallbackInvoke(w, i);
      return after;
    }
    sum_->calls.push_back({w, has_recv, ActiveHeld(), body_.file_index, i});
    return after;  // arguments are scanned normally
  }
  return after;
}

size_t BodyAnalyzer::HandleGuardDecl(const std::string& type_word, size_t i) {
  size_t j = SkipSpaces(s_, i);
  if (j < s_.size() && s_[j] == '<') j = SkipSpaces(s_, SkipAngles(s_, j));
  std::string var = ReadIdent(s_, j);
  if (var.empty()) return j;
  size_t k = SkipSpaces(s_, j + var.size());
  if (k >= s_.size() || (s_[k] != '(' && s_[k] != '{')) return k;
  char open = s_[k];
  char close = open == '(' ? ')' : '}';
  size_t e = SkipBalanced(s_, k, open, close);
  std::vector<std::string> args =
      SplitArgs(s_.substr(k + 1, e > k + 1 ? e - k - 2 : 0));
  bool defer = false;
  std::vector<std::string> lock_exprs;
  for (const std::string& a : args) {
    if (a == "std::defer_lock" || a == "defer_lock") {
      defer = true;
    } else if (a == "std::adopt_lock" || a == "adopt_lock" ||
               a == "std::try_to_lock" || a == "try_to_lock") {
      // tag only
    } else {
      lock_exprs.push_back(a);
    }
  }
  // Snapshot once: std::scoped_lock orders its own arguments safely, so
  // co-arguments never form edges against each other.
  (void)type_word;
  auto snapshot = ActiveHeld();
  for (const std::string& expr : lock_exprs) {
    ResolvedLock r = ResolveLockExpr(expr, body_.class_stack, corpus_);
    if (local_mutexes_.count(expr))
      r = {sum_->key + "/" + expr, false};  // function-local lock
    if (r.id.empty()) continue;
    if (!defer) {
      for (const auto& [id, expl] : snapshot)
        AddEdge(id, expl, r.id, r.explicit_recv, k);
      sum_->acquires.insert(r.id);
    }
    held_.push_back({r.id, r.explicit_recv, depth_, var, !defer});
  }
  return e;
}

void BodyAnalyzer::HandleManualLockOp(const std::string& var,
                                      const std::string& op, size_t pos) {
  bool is_unlock = op == "unlock" || op == "unlock_shared";
  bool matched_guard = false;
  for (Held& h : held_) {
    if (h.guard != var || var.empty()) continue;
    matched_guard = true;
    if (is_unlock) {
      h.active = false;
    } else if (!h.active) {
      for (const auto& [id, expl] : ActiveHeld())
        AddEdge(id, expl, h.id, h.explicit_recv, pos);
      h.active = true;
      sum_->acquires.insert(h.id);
    }
  }
  if (matched_guard) return;
  ResolvedLock r = ResolveLockExpr(var, body_.class_stack, corpus_);
  if (local_mutexes_.count(var)) r = {sum_->key + "/" + var, false};
  if (r.id.empty()) return;
  if (is_unlock) {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      if (it->active && it->guard.empty() && it->id == r.id) {
        it->active = false;
        break;
      }
    }
  } else {
    for (const auto& [id, expl] : ActiveHeld())
      AddEdge(id, expl, r.id, r.explicit_recv, pos);
    sum_->acquires.insert(r.id);
    held_.push_back({r.id, r.explicit_recv, depth_, "", true});
  }
}

// ---------------------------------------------------------------------------
// Inter-procedural fixpoint, cycle detection, findings.
// ---------------------------------------------------------------------------

// Iterative Tarjan SCC over the lock graph; returns component id per node.
std::map<std::string, int> SccComponents(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> nodes;
  for (const auto& [n, _] : adj) nodes.push_back(n);
  std::map<std::string, int> index, low, comp;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next_index = 0, next_comp = 0;
  struct Frame {
    std::string node;
    std::vector<std::string> succ;
    size_t next = 0;
  };
  for (const std::string& start : nodes) {
    if (index.count(start)) continue;
    std::vector<Frame> frames;
    auto push_node = [&](const std::string& n) {
      index[n] = low[n] = next_index++;
      stack.push_back(n);
      on_stack.insert(n);
      Frame f;
      f.node = n;
      auto it = adj.find(n);
      if (it != adj.end())
        f.succ.assign(it->second.begin(), it->second.end());
      frames.push_back(std::move(f));
    };
    push_node(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succ.size()) {
        const std::string& w = f.succ[f.next++];
        if (!index.count(w)) {
          push_node(w);
        } else if (on_stack.count(w)) {
          low[f.node] = std::min(low[f.node], index[w]);
        }
      } else {
        if (low[f.node] == index[f.node]) {
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            comp[w] = next_comp;
            if (w == f.node) break;
          }
          ++next_comp;
        }
        std::string done = f.node;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
      }
    }
  }
  return comp;
}

std::string JoinHeld(const std::vector<std::pair<std::string, bool>>& held) {
  std::string out;
  for (const auto& [id, expl] : held) {
    (void)expl;
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

}  // namespace

std::vector<Finding> AuditLocks(const std::vector<SourceFile>& files,
                                std::vector<LockEdge>* edges_out) {
  Corpus corpus;
  corpus.files = &files;
  for (const SourceFile& f : files)
    corpus.stripped.push_back(StripCommentsAndStrings(f.content));
  for (size_t i = 0; i < files.size(); ++i)
    StructScanner(static_cast<int>(i), corpus.stripped[i], &corpus).Run();

  std::vector<Summary> summaries;
  EdgeMap edges;
  std::vector<Finding> findings;
  for (const BodyInfo& b : corpus.bodies) {
    std::string key = b.cls.empty() ? b.name : b.cls + "::" + b.name;
    std::vector<std::string> held0;
    auto ann = corpus.annotations.find(key);
    if (ann != corpus.annotations.end()) {
      for (const std::string& expr : ann->second.requires_exprs) {
        ResolvedLock r = ResolveLockExpr(expr, b.class_stack, corpus);
        if (!r.id.empty()) held0.push_back(r.id);
      }
    }
    BodyAnalyzer(corpus, b, &summaries, &edges, &findings).Run(held0);
  }

  // QSP_EXCLUDES(m) on a function means some path through it acquires m:
  // fold it into the acquire set, and synthesize summaries for annotated
  // functions whose bodies were not scanned.
  std::map<std::string, std::vector<size_t>> by_key, by_name;
  for (size_t i = 0; i < summaries.size(); ++i) {
    if (summaries[i].key.find('<') != std::string::npos) continue;
    by_key[summaries[i].key].push_back(i);
    by_name[summaries[i].name].push_back(i);
  }
  for (const auto& [key, ann] : corpus.annotations) {
    if (ann.excludes_exprs.empty()) continue;
    std::vector<std::string> stack;
    if (!ann.cls.empty()) stack.push_back(ann.cls);
    std::set<std::string> ids;
    for (const std::string& expr : ann.excludes_exprs) {
      ResolvedLock r = ResolveLockExpr(expr, stack, corpus);
      if (!r.id.empty()) ids.insert(r.id);
    }
    if (ids.empty()) continue;
    auto targets = by_key.find(key);
    if (targets != by_key.end()) {
      for (size_t idx : targets->second)
        summaries[idx].acquires.insert(ids.begin(), ids.end());
    } else {
      Summary pseudo;
      pseudo.key = key;
      size_t sep = key.rfind("::");
      pseudo.name = sep == std::string::npos ? key : key.substr(sep + 2);
      pseudo.class_stack = stack;
      pseudo.acquires = ids;
      by_key[pseudo.key].push_back(summaries.size());
      by_name[pseudo.name].push_back(summaries.size());
      summaries.push_back(std::move(pseudo));
    }
  }
  for (Summary& s : summaries) s.trans = s.acquires;

  auto resolve = [&](const CallSite& call,
                     const Summary& s) -> const std::vector<size_t>* {
    if (!call.has_recv) {
      for (auto it = s.class_stack.rbegin(); it != s.class_stack.rend();
           ++it) {
        auto found = by_key.find(*it + "::" + call.name);
        if (found != by_key.end()) return &found->second;
      }
      auto free_fn = by_key.find(call.name);
      if (free_fn != by_key.end()) return &free_fn->second;
    }
    // Receiver type unknown (explicit receiver, or a bare name outside
    // the enclosing classes): bind by name only when unambiguous — one
    // distinct function corpus-wide (overloads of it are fine). Unioning
    // every same-named method would invent lock edges between unrelated
    // classes.
    auto any = by_name.find(call.name);
    if (any == by_name.end()) return nullptr;
    const std::string& first_key = summaries[any->second.front()].key;
    for (size_t idx : any->second) {
      if (summaries[idx].key != first_key) return nullptr;
    }
    return &any->second;
  };

  bool changed = true;
  for (int iter = 0; changed && iter < 50; ++iter) {
    changed = false;
    for (Summary& s : summaries) {
      for (const CallSite& call : s.calls) {
        const std::vector<size_t>* targets = resolve(call, s);
        if (!targets) continue;
        for (size_t t : *targets) {
          const Summary& callee = summaries[t];
          for (const std::string& id : callee.trans)
            if (s.trans.insert(id).second) changed = true;
          if ((callee.invokes_cb || callee.trans_cb) && !s.trans_cb &&
              !s.invokes_cb) {
            s.trans_cb = true;
            s.trans_cb_via = call.name;
            changed = true;
          }
        }
      }
    }
  }

  // Call-site edges and inter-procedural callback findings.
  std::set<std::string> cb_reported;
  for (const Summary& s : summaries) {
    for (const CallSite& call : s.calls) {
      if (call.held.empty()) continue;
      const std::vector<size_t>* targets = resolve(call, s);
      if (!targets) continue;
      std::set<std::string> acq;
      bool cb = false;
      for (size_t t : *targets) {
        acq.insert(summaries[t].trans.begin(), summaries[t].trans.end());
        cb = cb || summaries[t].invokes_cb || summaries[t].trans_cb;
      }
      const std::string& file = files[call.file_index].path;
      int line = LineOf(corpus.stripped[call.file_index], call.pos);
      for (const auto& [held_id, held_expl] : call.held) {
        for (const std::string& m : acq) {
          if (held_id == m && (held_expl || call.has_recv)) continue;
          edges.emplace(std::make_pair(held_id, m),
                        LockEdge{held_id, m, file, line});
        }
      }
      if (cb) {
        std::string dedupe = file + ":" + std::to_string(line) + ":" +
                             call.name;
        if (cb_reported.insert(dedupe).second) {
          findings.push_back(
              {file, line, "callback-under-lock",
               "call to `" + call.name + "` reaches a stored-callback "
               "invocation while holding " + JoinHeld(call.held) +
               " — the callback runs under this lock"});
        }
      }
    }
  }

  // Cycle findings over the lock-order graph.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, e] : edges) {
    adj[key.first].insert(key.second);
    adj[key.second];  // ensure the node exists
  }
  std::map<std::string, int> comp = SccComponents(adj);
  std::map<int, std::vector<std::string>> members;
  for (const auto& [node, c] : comp) members[c].push_back(node);
  for (const auto& [key, e] : edges) {
    if (key.first == key.second) {
      findings.push_back(
          {e.file, e.line, "lock-order-cycle",
           "`" + key.first + "` can be re-acquired on a path that already "
           "holds it (self-deadlock on a non-recursive mutex)"});
      continue;
    }
    int c = comp[key.first];
    if (c != comp[key.second] || members[c].size() < 2) continue;
    std::string cycle;
    for (const std::string& n : members[c]) {
      if (!cycle.empty()) cycle += ", ";
      cycle += n;
    }
    findings.push_back(
        {e.file, e.line, "lock-order-cycle",
         "holds `" + key.first + "` while acquiring `" + key.second +
         "`, closing a lock-order cycle among {" + cycle +
         "} — another path acquires these in the opposite order"});
  }

  if (edges_out) {
    for (const auto& [key, e] : edges) {
      (void)key;
      edges_out->push_back(e);
    }
  }
  return findings;
}

}  // namespace lint
}  // namespace qsp
