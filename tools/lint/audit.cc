#include "lint/audit.h"

#include <algorithm>
#include <map>
#include <set>

namespace qsp {
namespace lint {

AuditResult RunAudit(const std::vector<SourceFile>& files,
                     const LayerSpec& spec) {
  AuditResult result;
  std::vector<Finding> raw = AuditIncludes(files, spec);
  std::vector<Finding> lock = AuditLocks(files, &result.lock_edges);
  raw.insert(raw.end(), lock.begin(), lock.end());

  // Allow markers are parsed from raw content (they live in comments).
  std::map<std::string, std::map<int, std::set<std::string>>> allows;
  for (const SourceFile& f : files)
    allows[f.path] = CollectAllowMarkers(f.content);

  for (Finding& f : raw) {
    const auto& file_allows = allows[f.file];
    auto line_allows = file_allows.find(f.line);
    if (line_allows != file_allows.end() &&
        line_allows->second.count(f.rule)) {
      ++result.suppressed;
      continue;
    }
    result.findings.push_back(std::move(f));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end()),
      result.findings.end());
  return result;
}

}  // namespace lint
}  // namespace qsp
