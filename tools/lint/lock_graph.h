#ifndef QSP_TOOLS_LINT_LOCK_GRAPH_H_
#define QSP_TOOLS_LINT_LOCK_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

/// Cross-file lock-discipline analysis for qsp_audit (DESIGN.md §14).
/// Token-level, no libclang: a structural scanner harvests mutex members
/// (`std::mutex`, `recursive_mutex`, `shared_mutex`, ...), stored
/// callback members (`std::function<...>`), and the thread-safety
/// annotations (`QSP_REQUIRES`/`QSP_EXCLUDES` on declarations seed and
/// constrain the held-set; `QSP_GUARDED_BY` is parsed so annotated
/// members resolve), then walks every function body tracking guard
/// objects (`lock_guard`/`unique_lock`/`scoped_lock`/`shared_lock`),
/// manual `m.lock()`/`m.unlock()`, and guard `.unlock()`/`.lock()`
/// re-acquisition — the PR 8 pattern of releasing before invoking a
/// callback is understood, not flagged.
///
/// Locks are identified as `Class::member` (resolved through the
/// enclosing class of the acquiring function, or through the unique
/// declaring class for `obj.mu` member accesses). Function summaries
/// propagate acquired locks to callers to a fixpoint, so an edge
/// `A -> B` exists when B is acquired (directly or through any call
/// chain) while A is held.
///
/// Rules:
///   lock-order-cycle     The inter-procedural lock-order graph has a
///                        cycle (potential deadlock), including
///                        self-edges (re-acquiring a non-recursive mutex
///                        on the same call path). One finding per edge
///                        participating in a cycle, at the acquisition
///                        site that creates the edge.
///   callback-under-lock  A stored `std::function` (member, parameter,
///                        local, or alias of one) is invoked while any
///                        mutex is held. The callee is arbitrary user
///                        code: it can call back into the locked object
///                        and deadlock — copy it out and invoke after
///                        unlocking (what LivePlanManager::ProcessBatch
///                        does since PR 8).
///
/// Heuristics and limits (documented, deliberate): lambda bodies are
/// analyzed as deferred work (fresh empty held-set — they are almost
/// always pool tasks or thread mains here), calls through an explicit
/// receiver (`other.F()`) never create self-edges (different-instance
/// assumption), and calls bind to a summary only when the callee is
/// unambiguous: no-receiver calls resolve through the enclosing class
/// chain then free functions, and explicit-receiver calls bind by name
/// only when every same-named summary in the corpus is the same
/// function — ambiguous names are dropped rather than unioned, trading
/// recall for zero false edges.
namespace qsp {
namespace lint {

/// One edge of the lock-order graph, for tests and EXPLAIN-style dumps.
struct LockEdge {
  std::string held;      // lock id held at the acquisition
  std::string acquired;  // lock id acquired
  std::string file;
  int line = 0;
};

/// Runs the lock rules over the corpus. Findings are unsuppressed and
/// unsorted; audit.cc applies allow markers and the global ordering.
/// When `edges_out` is non-null, the deduplicated lock-order graph is
/// appended to it (deterministic order).
std::vector<Finding> AuditLocks(const std::vector<SourceFile>& files,
                                std::vector<LockEdge>* edges_out = nullptr);

}  // namespace lint
}  // namespace qsp

#endif  // QSP_TOOLS_LINT_LOCK_GRAPH_H_
