// A civilian dissemination scenario (paper Section 1: "traffic
// information systems"): commuters subscribe to road-incident updates
// for the areas along their routes, subscriptions churn as trips start
// and end, and the service maintains its merge plan *incrementally*
// (future work, Section 11) instead of re-planning from scratch.
//
// Demonstrates: IncrementalMerger add/remove/repair, and the gap between
// the maintained plan and a from-scratch pair merge.

#include <cstdio>
#include <deque>
#include <vector>

#include "cost/cost_model.h"
#include "merge/incremental_merger.h"
#include "merge/pair_merger.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using namespace qsp;
  std::printf("Metro traffic feed: churning route subscriptions\n\n");

  // The metro area; density approximates incidents per km^2.
  const Rect metro(0, 0, 60, 60);
  QuerySet queries;
  UniformDensityEstimator estimator(2.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{30.0, 1.0, 0.5, 0.0};

  IncrementalMerger live_plan(&ctx, model);
  const PairMerger scratch;

  Rng rng(88);
  std::deque<QueryId> active;  // FIFO of live trips.
  TablePrinter table({"tick", "active subs", "groups", "live cost",
                      "scratch cost", "gap %"});

  for (int tick = 1; tick <= 10; ++tick) {
    // Each tick: ~6 new commutes start near a few corridors, ~4 finish.
    for (int i = 0; i < 6; ++i) {
      const double corridor =
          10.0 + 10.0 * static_cast<double>(rng.UniformInt(0, 3));
      const double cx = rng.Normal(corridor, 3.0);
      const double cy = rng.Normal(30.0, 8.0);
      const double w = rng.UniformDouble(4, 10);
      const double h = rng.UniformDouble(4, 10);
      const Rect route =
          Rect(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)
              .ClampTo(metro);
      const QueryId id = queries.Add(route);
      active.push_back(id);
      live_plan.AddQuery(id);
    }
    for (int i = 0; i < 4 && active.size() > 6; ++i) {
      live_plan.RemoveQuery(active.front());
      active.pop_front();
    }
    // Light repair pass each tick keeps drift bounded.
    live_plan.Repair(/*max_moves=*/3);

    // From-scratch baseline on the same active set.
    Partition start;
    for (QueryId q : active) start.push_back({q});
    const MergeOutcome baseline = scratch.MergeFrom(ctx, model, start);
    const double gap =
        baseline.cost > 0
            ? 100.0 * (live_plan.cost() - baseline.cost) / baseline.cost
            : 0.0;
    table.AddRow({std::to_string(tick), std::to_string(active.size()),
                  std::to_string(live_plan.partition().size()),
                  std::to_string(live_plan.cost()),
                  std::to_string(baseline.cost), std::to_string(gap)});
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Incremental maintenance evaluated %llu candidate groups in "
              "total;\nre-planning from scratch would repeat the whole "
              "O(n^2) pass on every tick.\n",
              static_cast<unsigned long long>(live_plan.evaluations()));
  return 0;
}
