// The paper's motivating scenario (Section 2): Battlefield Awareness and
// Data Dissemination. Operational units subscribe to geographic areas of
// a battlefield database; a server merges the overlapping subscriptions
// and disseminates answers over a small number of satellite multicast
// channels; units apply extractors to recover their own pictures.
//
// The example compares three dissemination strategies on the same
// battlefield: naive (no merging, one channel), merged (pair merging,
// one channel), and merged + channel allocation (3 channels), and prints
// the traffic each one generates.

#include <cstdio>
#include <string>

#include "core/subscription_service.h"
#include "relation/generator.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

struct StrategyResult {
  std::string name;
  double planned_cost = 0;
  qsp::RoundStats round;
};

StrategyResult RunStrategy(const std::string& name,
                           const qsp::ServiceConfig& config,
                           bool merge) {
  using namespace qsp;

  // Battlefield: objects (units, sensors, obstacles) concentrated around
  // a few hot areas, like troop concentrations.
  Rng rng(1944);
  const Rect theater(0, 0, 500, 500);
  TableGeneratorConfig tconfig;
  tconfig.domain = theater;
  tconfig.num_objects = 20000;
  tconfig.clustered_fraction = 0.8;
  tconfig.num_clusters = 6;
  tconfig.cluster_spread = 0.05;
  tconfig.payload_fields = 2;   // e.g. unit type + status report
  tconfig.payload_bytes = 24;
  Table table = GenerateTable(tconfig, &rng);

  SubscriptionService service(std::move(table), theater, config);

  // 12 operational units; each watches 2-3 rectangles around its own
  // position, so nearby units ask for heavily overlapping areas.
  Rng unit_rng(7);
  for (int u = 0; u < 12; ++u) {
    const ClientId unit = service.AddClient();
    // Units deploy around the same hot spots as the objects.
    const double bx = unit_rng.UniformDouble(50, 450);
    const double by = unit_rng.UniformDouble(50, 450);
    const int areas = 2 + static_cast<int>(unit_rng.UniformInt(0, 1));
    for (int a = 0; a < areas; ++a) {
      const double cx = bx + unit_rng.Normal(0, 15);
      const double cy = by + unit_rng.Normal(0, 15);
      const double w = unit_rng.UniformDouble(30, 80);
      const double h = unit_rng.UniformDouble(30, 80);
      service.Subscribe(unit,
                        Rect(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)
                            .ClampTo(theater));
    }
  }

  StrategyResult result;
  result.name = name;
  if (!merge) {
    // Naive baseline: pretend every query is its own group by pricing
    // merging out of the model (K_T = K_U large relative to K_M = 0
    // would still merge identicals; instead run the planner with a model
    // that never benefits: K_M = 0 means a merge can only add size/U).
    // The service still verifies extraction end to end.
  }
  auto report = service.Plan();
  if (!report.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  result.planned_cost = report->estimated_cost;
  auto stats = service.RunRound();
  if (!stats.ok() || !stats->all_answers_correct) {
    std::fprintf(stderr, "round failed or answers wrong (%s)\n",
                 result.name.c_str());
    std::exit(1);
  }
  result.round = *stats;
  return result;
}

}  // namespace

int main() {
  using namespace qsp;
  std::printf("BADD battlefield dissemination demo (paper Section 2)\n");
  std::printf("12 operational units, 20k objects, clustered theater\n\n");

  ServiceConfig naive;
  naive.cost_model = {0.0, 1.0, 1.0, 0.0};  // K_M=0: merging never pays.
  naive.merger = MergerKind::kPairMerging;
  naive.estimator = EstimatorKind::kHistogram;

  ServiceConfig merged = naive;
  merged.cost_model = {2000.0, 1.0, 0.3, 0.0};  // Satellite msgs pricey.

  ServiceConfig channels = merged;
  channels.num_channels = 3;
  channels.allocation_policy = StartPolicy::kBestOfBoth;

  const StrategyResult results[] = {
      RunStrategy("naive (no merging)", naive, false),
      RunStrategy("merged, 1 channel", merged, true),
      RunStrategy("merged, 3 channels", channels, true),
  };

  TablePrinter table({"strategy", "messages", "payload KB", "irrelevant rows",
                      "header checks", "channels"});
  for (const auto& r : results) {
    table.AddRow({r.name, std::to_string(r.round.num_messages),
                  std::to_string(r.round.payload_bytes / 1024),
                  std::to_string(r.round.irrelevant_rows),
                  std::to_string(r.round.headers_checked),
                  std::to_string(r.round.channels_used)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Merging cuts messages and bytes; multiple channels cut the headers\n"
      "each unit must check (it only sees its own channel's traffic).\n");
  return 0;
}
