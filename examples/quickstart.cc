// Quickstart: the 60-second tour of the qsp public API.
//
//   1. Build (or load) a geographic table.
//   2. Create a SubscriptionService, register clients + range queries.
//   3. Plan() merges overlapping subscriptions under the cost model.
//   4. RunRound() disseminates merged answers and verifies that every
//      client can reconstruct its exact answer with its extractor.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/subscription_service.h"
#include "relation/generator.h"
#include "util/rng.h"

int main() {
  using namespace qsp;

  // A 100x100 world with 5000 objects, some clustered.
  const Rect domain(0, 0, 100, 100);
  Rng rng(2024);
  TableGeneratorConfig tconfig;
  tconfig.domain = domain;
  tconfig.num_objects = 5000;
  tconfig.clustered_fraction = 0.5;
  Table table = GenerateTable(tconfig, &rng);

  // Cost model: messages cost 5, transmission 1/tuple, client-side
  // filtering 0.5/irrelevant tuple.
  ServiceConfig config;
  config.cost_model = {5.0, 1.0, 0.5, 0.0};
  config.merger = MergerKind::kPairMerging;
  config.procedure = ProcedureKind::kBoundingRect;
  config.estimator = EstimatorKind::kHistogram;

  SubscriptionService service(std::move(table), domain, config);

  // Three clients; two ask about overlapping areas, one about a far one.
  const ClientId alice = service.AddClient();
  const ClientId bob = service.AddClient();
  const ClientId carol = service.AddClient();
  service.Subscribe(alice, Rect(10, 10, 30, 30));
  service.Subscribe(bob, Rect(12, 12, 33, 31));  // Overlaps alice's.
  service.Subscribe(carol, Rect(70, 70, 90, 90));

  auto report = service.Plan();
  if (!report.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("Unmerged cost : %.1f\n", report->initial_cost);
  std::printf("Planned cost  : %.1f  (%zu merged group(s))\n",
              report->estimated_cost, report->num_groups);

  auto stats = service.RunRound();
  if (!stats.ok()) {
    std::fprintf(stderr, "round failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("Round: %zu message(s), %zu payload rows, %zu bytes, "
              "%zu irrelevant row deliveries\n",
              stats->num_messages, stats->payload_rows,
              stats->payload_bytes, stats->irrelevant_rows);
  std::printf("Every client recovered its exact answer: %s\n",
              stats->all_answers_correct ? "yes" : "NO (bug!)");
  return stats->all_answers_correct ? 0 : 1;
}
