// Channel-allocation planning tool (paper Sections 7-8): given a set of
// clients with subscriptions and a budget of multicast channels, compare
// the exhaustive and heuristic allocators and show how total cost falls
// as channels are added — including where extra channels stop helping.
//
// Run:  ./build/examples/channel_planner [num_clients] [max_channels]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "channel/channel_cost.h"
#include "channel/exhaustive_allocator.h"
#include "channel/hill_climb_allocator.h"
#include "cost/cost_model.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

int main(int argc, char** argv) {
  using namespace qsp;
  const size_t num_clients =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 8;
  const int max_channels = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("Channel planning for %zu clients, 1..%d channels\n\n",
              num_clients, max_channels);

  Rng rng(555);
  QueryGenConfig qconfig;
  qconfig.domain = Rect(0, 0, 1000, 1000);
  qconfig.num_queries = num_clients * 3;
  qconfig.cf = 0.7;
  qconfig.sf = 0.3;
  qconfig.df = 0.04;
  QuerySet queries(GenerateQueries(qconfig, &rng));
  ClientSet clients =
      AssignClients(queries, num_clients, ClientAssignment::kLocality, &rng);

  UniformDensityEstimator estimator(0.001);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  // K_D models per-channel router/transponder state; k_check is the cost
  // a client pays to inspect each message header on its channel — the
  // term that makes splitting clients across channels pay off.
  CostModel model{10.0, 9.0, 4.0, /*k_d=*/25.0};
  model.k_check = 5.0;
  ChannelCostEvaluator evaluator(&ctx, model, &clients);

  const bool exhaustive_feasible = num_clients <= 10;
  TablePrinter table({"channels", "heuristic cost", "optimal cost",
                      "heuristic alloc"});
  for (int c = 1; c <= max_channels; ++c) {
    HillClimbAllocator heuristic(StartPolicy::kBestOfBoth, 99);
    auto outcome = heuristic.Allocate(evaluator, c);
    if (!outcome.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::string optimal = "n/a (too many clients)";
    if (exhaustive_feasible) {
      ExhaustiveAllocator exact;
      auto best = exact.Allocate(evaluator, c);
      if (best.ok()) optimal = std::to_string(best->cost);
    }
    table.AddRow({std::to_string(c), std::to_string(outcome->cost), optimal,
                  AllocationToString(outcome->allocation)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Adding channels splits disjoint interest groups (cost drops) until\n"
      "the K_D per-channel charge outweighs the separation benefit.\n");
  return 0;
}
