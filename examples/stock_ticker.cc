// A one-dimensional subscription domain (paper Section 1: "stock and
// sports tickers"), showing that nothing in the library is tied to
// geography: a price-band subscription over one attribute is a range
// query with a degenerate second axis.
//
// Traders subscribe to price bands of a ticker universe (x = price,
// y unused); the service merges overlapping bands exactly like the
// paper's Section 1 example merges sigma_{2<=A<=40} with
// sigma_{3<=A<=41} into sigma_{2<=A<=41}.

#include <cstdio>

#include "core/subscription_service.h"
#include "relation/table.h"
#include "util/rng.h"

int main() {
  using namespace qsp;

  // Universe: 4000 instruments with a last-trade price in [0, 1000].
  // Price is the first (x) position column; the second is fixed at 0.
  const Rect domain(0, 0, 1000, 1);
  Table table(Schema::Geographic(1));
  Rng rng(9);
  for (int i = 0; i < 4000; ++i) {
    // Log-ish price distribution: most instruments cheap, a long tail.
    const double price = rng.UniformDouble(0, 1) < 0.8
                             ? rng.UniformDouble(1, 200)
                             : rng.UniformDouble(200, 1000);
    auto inserted = table.Insert({price, 0.0, std::string("SYM")});
    if (!inserted.ok()) return 1;
  }

  ServiceConfig config;
  config.cost_model = {80.0, 1.0, 0.4, 0.0};
  config.estimator = EstimatorKind::kHistogram;  // Handles price skew.
  SubscriptionService service(std::move(table), domain, config);

  // Traders watch overlapping price bands.
  struct Band {
    const char* who;
    double lo, hi;
  };
  const Band bands[] = {
      {"penny desk", 1, 25},       {"small caps", 5, 60},
      {"small caps", 40, 120},     {"mid caps", 90, 300},
      {"mid caps", 100, 320},      {"large caps", 280, 900},
      {"index desk", 1, 950},
  };
  ClientId last = 0;
  const char* last_name = "";
  for (const Band& band : bands) {
    if (std::string(band.who) != last_name) {
      last = service.AddClient();
      last_name = band.who;
    }
    service.Subscribe(last, Rect(band.lo, 0, band.hi, 1));
  }

  auto report = service.Plan();
  if (!report.ok()) return 1;
  auto stats = service.RunRound();
  if (!stats.ok() || !stats->all_answers_correct) return 1;

  std::printf("Stock ticker: %zu price-band subscriptions from %zu desks\n",
              service.queries().size(), service.clients().num_clients());
  std::printf("Unmerged cost : %.0f\n", report->initial_cost);
  std::printf("Merged cost   : %.0f (%zu band group(s))\n",
              report->estimated_cost, report->num_groups);
  for (const QueryGroup& group : report->plan.channel_partitions[0]) {
    Rect merged = Rect::Empty();
    for (QueryId q : group) {
      merged = merged.BoundingUnion(service.queries().rect(q));
    }
    std::printf("  group %-12s -> price band [%.0f, %.0f]\n",
                GroupToString(group).c_str(), merged.x_lo(), merged.x_hi());
  }
  std::printf("Round: %zu messages, %zu instruments on the wire, all "
              "answers exact: %s\n",
              stats->num_messages, stats->payload_rows,
              stats->all_answers_correct ? "yes" : "NO");
  return 0;
}
