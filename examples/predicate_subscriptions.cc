// Subscribing with SQL-ish selection predicates (the paper's sigma
// queries in their textual form) and comparing the two extractor
// implementations of Section 3.1:
//   * self-extraction — clients re-apply their original query to each
//     merged answer (no extra bytes, per-tuple geometry at the client);
//   * server tags    — the server marks each answer object with the
//     member queries it belongs to (4 bytes/row, trivial client work).

#include <cstdio>

#include "core/subscription_service.h"
#include "relation/generator.h"
#include "util/rng.h"

namespace {

qsp::RoundStats RunWith(qsp::ExtractionMode mode) {
  using namespace qsp;
  Rng rng(77);
  const Rect domain(0, 0, 360, 180);  // Lon x lat, world-ish.
  TableGeneratorConfig tconfig;
  tconfig.domain = domain;
  tconfig.num_objects = 8000;
  tconfig.clustered_fraction = 0.6;
  tconfig.payload_fields = 1;
  tconfig.payload_bytes = 48;  // A weather report string.
  Table table = GenerateTable(tconfig, &rng);

  ServiceConfig config;
  config.cost_model = {50.0, 1.0, 0.5, 0.0};
  config.extraction = mode;
  SubscriptionService service(std::move(table), domain, config);

  // Three weather consumers subscribing by predicate. The first two ask
  // about overlapping parts of the same region.
  const ClientId pacific_desk = service.AddClient();
  const ClientId asia_desk = service.AddClient();
  const ClientId europe_desk = service.AddClient();
  struct Sub {
    ClientId client;
    const char* predicate;
  };
  const Sub subs[] = {
      {pacific_desk, "longitude BETWEEN 140 AND 200 AND "
                     "latitude BETWEEN 60 AND 120"},
      {asia_desk, "longitude BETWEEN 150 AND 210 AND "
                  "latitude BETWEEN 65 AND 125"},
      {asia_desk, "longitude BETWEEN 60 AND 100 AND "
                  "latitude BETWEEN 80 AND 110"},
      {europe_desk, "longitude BETWEEN 0 AND 40 AND "
                    "latitude BETWEEN 110 AND 150"},
  };
  for (const Sub& sub : subs) {
    auto id = service.SubscribeWhere(sub.client, sub.predicate);
    if (!id.ok()) {
      std::fprintf(stderr, "subscribe failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }

  auto report = service.Plan();
  if (!report.ok()) std::exit(1);
  auto stats = service.RunRound();
  if (!stats.ok() || !stats->all_answers_correct) std::exit(1);
  return *stats;
}

}  // namespace

int main() {
  std::printf("Predicate subscriptions + extractor comparison\n\n");
  const qsp::RoundStats self = RunWith(qsp::ExtractionMode::kSelfExtract);
  const qsp::RoundStats tags = RunWith(qsp::ExtractionMode::kServerTags);

  std::printf("%-28s %14s %14s\n", "", "self-extract", "server-tags");
  std::printf("%-28s %14zu %14zu\n", "messages", self.num_messages,
              tags.num_messages);
  std::printf("%-28s %14zu %14zu\n", "payload bytes", self.payload_bytes,
              tags.payload_bytes);
  std::printf("%-28s %14zu %14zu\n", "rows examined by clients",
              self.rows_examined, tags.rows_examined);
  std::printf("%-28s %14s %14s\n", "all answers correct",
              self.all_answers_correct ? "yes" : "NO",
              tags.all_answers_correct ? "yes" : "NO");
  std::printf(
      "\nTags trade 4 bytes per transmitted row for eliminating the\n"
      "client-side geometric test per (row, extractor) pair — the\n"
      "choice the paper leaves open in Section 3.1.\n");
  return 0;
}
